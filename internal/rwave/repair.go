package rwave

import (
	"sort"

	"regcluster/internal/matrix"
)

// Index repair under dataset growth.
//
// When a gene's row gains conditions at the END of the matrix (the
// append-conditions delta of the service layer), the expensive part of a
// model rebuild — the O(n log n) stable sort of the full row — is avoidable:
// the old sorted order is a sorted run already, and the k new entries form a
// second sorted run whose condition indices are all larger than any old one.
// A stable two-run merge therefore reproduces sort.SliceStable's output
// exactly (stability breaks value ties by original position, and the
// original position order is "all old conditions, then the new ones in index
// order"), after which the pointer, frontier and chain-length passes are the
// same O(n) scans a cold build runs. Repair is O(n + k log k) instead of
// O(n log n), and its output is byte-identical to BuildAbsolute on the grown
// row — the property TestRepairMatchesBuild and FuzzRepair pin.

// Repair builds the model for gene of m by splicing the appended conditions
// of m (those at index >= old.Conditions()) into old's sorted order. The fast
// path applies only when old genuinely is the model of this row's prefix
// under the same absolute threshold: same gene, same γ bit pattern, a prefix
// of identical values, and at least one appended condition. Any mismatch —
// including a γ drift from a relative-gamma row whose range grew — falls back
// to a cold BuildAbsolute. The second return reports whether the fast path
// ran; either way the returned model is correct for (m, gene, gammaAbs).
func Repair(old *Model, m *matrix.Matrix, gene int, gammaAbs float64) (*Model, bool) {
	if old == nil || !repairable(old, m, gene, gammaAbs) {
		return BuildAbsolute(m, gene, gammaAbs), false
	}
	oldN, n := old.Conditions(), m.Cols()
	row := m.Row(gene)

	// Sort the appended conditions by value; sort.SliceStable keeps equal
	// values in ascending index order, matching a cold build's tie-break.
	fresh := make([]int, n-oldN)
	for i := range fresh {
		fresh[i] = oldN + i
	}
	sort.SliceStable(fresh, func(a, b int) bool { return row[fresh[a]] < row[fresh[b]] })

	mod := &Model{gene: gene, gamma: gammaAbs}
	mod.bindStripes(make([]int, slabIntStripes*n), make([]float64, slabFloatStripes*n), n)

	// Stable merge of the two sorted runs: every old condition precedes every
	// new one in original position, so on a value tie the old run wins.
	oi, fi := 0, 0
	for r := 0; r < n; r++ {
		switch {
		case oi < oldN && (fi == len(fresh) || !(row[fresh[fi]] < old.values[oi])):
			mod.order[r] = old.order[oi]
			oi++
		default:
			mod.order[r] = fresh[fi]
			fi++
		}
	}
	for r, c := range mod.order {
		mod.rank[c] = r
		mod.values[r] = row[c]
		mod.valueByCond[c] = row[c]
	}
	mod.buildPointers()
	mod.buildFrontiers()
	mod.buildChainLengths()
	return mod, true
}

// repairable reports whether the merge fast path of Repair is sound for
// (old, m, gene, gammaAbs). The prefix scan is exact float equality, so a
// NaN anywhere in the prefix (which never compares equal) also forces the
// cold build — Repair never has to reason about NaN ordering.
func repairable(old *Model, m *matrix.Matrix, gene int, gammaAbs float64) bool {
	oldN := old.Conditions()
	if old.gene != gene || old.gamma != gammaAbs || m.Cols() <= oldN {
		return false
	}
	row := m.Row(gene)
	for c := 0; c < oldN; c++ {
		if old.valueByCond[c] != row[c] {
			return false
		}
	}
	return true
}
