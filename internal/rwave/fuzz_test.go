package rwave

import (
	"testing"

	"regcluster/internal/matrix"
)

// FuzzRepair is the nightly differential fuzz target: an arbitrary byte
// string decodes into a base row, an appended suffix and a threshold, and the
// repaired model must equal a from-scratch build of the grown row in every
// field. The decoder keeps values on a small integer grid so ties — the
// stable-sort edge the merge must reproduce — dominate the corpus.
func FuzzRepair(f *testing.F) {
	f.Add([]byte{3, 2, 1, 0, 7, 3, 3, 5}, uint8(3), uint8(2))
	f.Add([]byte{0, 0, 0, 0, 0}, uint8(2), uint8(0))
	f.Add([]byte{9, 1, 9, 1, 9, 1, 2, 2}, uint8(5), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, oldLen, gammaGrid uint8) {
		vals := make([]float64, len(raw))
		for i, b := range raw {
			vals[i] = float64(b % 16)
		}
		oldN := int(oldLen)
		if oldN < 1 || oldN >= len(vals) {
			return // need a non-empty base and at least one appended value
		}
		gamma := float64(gammaGrid % 8)
		base := matrix.FromRows([][]float64{vals[:oldN]})
		grown := matrix.FromRows([][]float64{vals})
		old := BuildAbsolute(base, 0, gamma)
		repaired, fast := Repair(old, grown, 0, gamma)
		if !fast {
			t.Fatalf("fast path refused a valid append (oldN=%d n=%d γ=%v)", oldN, len(vals), gamma)
		}
		cold := BuildAbsolute(grown, 0, gamma)
		if !modelsIdentical(repaired, cold) {
			t.Fatalf("repaired model differs from cold build\nvals=%v oldN=%d γ=%v\nrepaired: %v\ncold:     %v",
				vals, oldN, gamma, repaired, cold)
		}
		// The repaired model must satisfy Lemma 3.1 exactness on a sample
		// condition, independent of the cold build agreeing.
		for c := 0; c < grown.Cols(); c++ {
			for d := 0; d < grown.Cols(); d++ {
				wantSucc := vals[d]-vals[c] > gamma
				if got := repaired.IsSuccessor(c, d); got != wantSucc {
					t.Fatalf("IsSuccessor(%d,%d)=%v, want %v", c, d, got, wantSucc)
				}
			}
		}
	})
}
