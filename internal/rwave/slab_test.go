package rwave

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/paperdata"
)

// searchSuccessorStart re-derives successorStart(rank(c)) the way the
// pre-memoization code did: binary search over the exported pointer list for
// the first pointer with A >= rank (Lemma 3.1). The memoized arrays must
// agree with this on every input.
func searchSuccessorStart(mod *Model, c int) int {
	ptrs := mod.Pointers()
	r := mod.Rank(c)
	i := sort.Search(len(ptrs), func(k int) bool { return ptrs[k].A >= r })
	if i == len(ptrs) {
		return mod.Conditions()
	}
	return ptrs[i].B
}

// searchPredecessorEnd is the binary-search reference for predecessorEnd:
// the A of the last pointer with B <= rank(c), or -1.
func searchPredecessorEnd(mod *Model, c int) int {
	ptrs := mod.Pointers()
	r := mod.Rank(c)
	j := sort.Search(len(ptrs), func(k int) bool { return ptrs[k].B > r })
	if j == 0 {
		return -1
	}
	return ptrs[j-1].A
}

func randomMatrix(rng *rand.Rand, rows, cols int) *matrix.Matrix {
	data := make([][]float64, rows)
	for g := range data {
		data[g] = make([]float64, cols)
		for c := range data[g] {
			// Quantized values so exact ties (and thus tie-broken orderings
			// and zero-gap adjacent ranks) occur regularly.
			data[g][c] = float64(rng.Intn(40)) / 4
		}
	}
	return matrix.FromRows(data)
}

// TestMemoizedFrontiersMatchPointerSearch cross-checks the build-time
// succStart/predEnd arrays against binary search over Pointers() on random
// matrices under all three threshold schemes: the Equation 4 relative γ,
// a shared absolute γ, and per-gene custom absolute thresholds.
func TestMemoizedFrontiersMatchPointerSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	check := func(t *testing.T, mod *Model, m *matrix.Matrix) {
		t.Helper()
		for c := 0; c < mod.Conditions(); c++ {
			if got, want := mod.SuccessorStartRank(c), searchSuccessorStart(mod, c); got != want {
				t.Fatalf("g%d c%d: SuccessorStartRank = %d, pointer search = %d\n%s",
					mod.Gene(), c, got, want, mod)
			}
			if got, want := mod.PredecessorEndRank(c), searchPredecessorEnd(mod, c); got != want {
				t.Fatalf("g%d c%d: PredecessorEndRank = %d, pointer search = %d\n%s",
					mod.Gene(), c, got, want, mod)
			}
			if got, want := mod.ValueOf(c), m.At(mod.Gene(), c); got != want {
				t.Fatalf("g%d c%d: ValueOf = %v, matrix = %v", mod.Gene(), c, got, want)
			}
		}
	}
	for trial := 0; trial < 60; trial++ {
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(12)
		m := randomMatrix(rng, rows, cols)
		for g := 0; g < rows; g++ {
			// Relative (Equation 4) scheme.
			check(t, Build(m, g, rng.Float64()), m)
			// Shared absolute scheme, including γ = 0 strictness.
			check(t, BuildAbsolute(m, g, float64(rng.Intn(5))), m)
			// Per-gene custom scheme: threshold depends on the gene index.
			check(t, BuildAbsolute(m, g, float64(g)*0.75+rng.Float64()), m)
		}
	}
}

// TestModelSlabViewsEqualStandaloneModels verifies that packing relocates
// storage without changing a single observable: every accessor of a packed
// model agrees with an identically built standalone model.
func TestModelSlabViewsEqualStandaloneModels(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	m := randomMatrix(rng, 9, 11)
	const gamma = 0.2

	packed := make([]*Model, m.Rows())
	loose := make([]*Model, m.Rows())
	for g := range packed {
		packed[g] = Build(m, g, gamma)
		loose[g] = Build(m, g, gamma)
	}
	slab := PackModels(packed)

	if slab.Genes() != m.Rows() || slab.Conditions() != m.Cols() {
		t.Fatalf("slab dims = %d×%d, want %d×%d",
			slab.Genes(), slab.Conditions(), m.Rows(), m.Cols())
	}
	if ints, floats := slab.Words(); ints != slabIntStripes*m.Rows()*m.Cols() ||
		floats != slabFloatStripes*m.Rows()*m.Cols() {
		t.Fatalf("slab words = (%d, %d), want (%d, %d)", ints, floats,
			slabIntStripes*m.Rows()*m.Cols(), slabFloatStripes*m.Rows()*m.Cols())
	}

	for g := range packed {
		p, l := packed[g], loose[g]
		if !slab.Contains(p) {
			t.Fatalf("g%d: slab does not contain its packed model", g)
		}
		if slab.Contains(l) {
			t.Fatalf("g%d: slab claims to contain a standalone model", g)
		}
		if p.Gene() != l.Gene() || p.Gamma() != l.Gamma() || p.Conditions() != l.Conditions() {
			t.Fatalf("g%d: header mismatch after pack", g)
		}
		if !reflect.DeepEqual(p.Pointers(), l.Pointers()) {
			t.Fatalf("g%d: pointers diverge: %v vs %v", g, p.Pointers(), l.Pointers())
		}
		if p.MaxChain() != l.MaxChain() {
			t.Fatalf("g%d: MaxChain %d vs %d", g, p.MaxChain(), l.MaxChain())
		}
		for c := 0; c < p.Conditions(); c++ {
			if p.Order(c) != l.Order(c) || p.Rank(c) != l.Rank(c) {
				t.Fatalf("g%d c%d: order/rank diverge", g, c)
			}
			if p.Value(c) != l.Value(c) || p.ValueOf(c) != l.ValueOf(c) {
				t.Fatalf("g%d c%d: values diverge", g, c)
			}
			if p.SuccessorStartRank(c) != l.SuccessorStartRank(c) ||
				p.PredecessorEndRank(c) != l.PredecessorEndRank(c) {
				t.Fatalf("g%d c%d: frontiers diverge", g, c)
			}
			if p.MaxUpChainFrom(c) != l.MaxUpChainFrom(c) ||
				p.MaxDownChainFrom(c) != l.MaxDownChainFrom(c) {
				t.Fatalf("g%d c%d: chain lengths diverge", g, c)
			}
			if !reflect.DeepEqual(p.Successors(c), l.Successors(c)) ||
				!reflect.DeepEqual(p.Predecessors(c), l.Predecessors(c)) {
				t.Fatalf("g%d c%d: successor/predecessor lists diverge", g, c)
			}
			for o := 0; o < p.Conditions(); o++ {
				if p.IsSuccessor(c, o) != l.IsSuccessor(c, o) ||
					p.IsPredecessor(c, o) != l.IsPredecessor(c, o) ||
					p.IsUpRegulated(c, o) != l.IsUpRegulated(c, o) {
					t.Fatalf("g%d c%d o%d: pairwise queries diverge", g, c, o)
				}
			}
		}
	}
}

func TestPackModelsEmpty(t *testing.T) {
	slab := PackModels(nil)
	if slab.Genes() != 0 || slab.Conditions() != 0 {
		t.Fatalf("empty pack: got %d×%d", slab.Genes(), slab.Conditions())
	}
	mod := Build(paperdata.RunningExample(), 0, 0.15)
	if slab.Contains(mod) {
		t.Fatal("empty slab claims to contain a model")
	}
}

// TestPackModelsAllocations pins the pack cost: exactly the int backing and
// the float backing, regardless of how many genes are packed. A third
// allocation is tolerated to keep the pin robust against toolchain changes,
// per the ≤3 budget in DESIGN.md.
func TestPackModelsAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, genes := range []int{1, 16, 300} {
		m := randomMatrix(rng, genes, 8)
		models := make([]*Model, genes)
		for g := range models {
			models[g] = Build(m, g, 0.25)
		}
		allocs := testing.AllocsPerRun(10, func() {
			PackModels(models)
		})
		if allocs > 3 {
			t.Errorf("PackModels(%d genes): %.1f allocs per run, want <= 3", genes, allocs)
		}
	}
}

// TestAppendVariantsMatchSliceForms checks the append-style successor and
// predecessor queries against the allocating forms, including prefix
// preservation and reuse without reallocation.
func TestAppendVariantsMatchSliceForms(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	m := randomMatrix(rng, 5, 10)
	for g := 0; g < m.Rows(); g++ {
		mod := BuildAbsolute(m, g, 1.5)
		buf := make([]int, 0, m.Cols())
		for c := 0; c < m.Cols(); c++ {
			succ := mod.Successors(c)
			pred := mod.Predecessors(c)

			got := mod.AppendSuccessors(buf[:0], c)
			if !reflect.DeepEqual(got, succ) && !(len(got) == 0 && len(succ) == 0) {
				t.Fatalf("g%d c%d: AppendSuccessors = %v, Successors = %v", g, c, got, succ)
			}
			got = mod.AppendPredecessors(buf[:0], c)
			if !reflect.DeepEqual(got, pred) && !(len(got) == 0 && len(pred) == 0) {
				t.Fatalf("g%d c%d: AppendPredecessors = %v, Predecessors = %v", g, c, got, pred)
			}

			prefix := []int{-7, -9}
			got = mod.AppendSuccessors(prefix, c)
			if !reflect.DeepEqual(got[:2], prefix[:2]) || !reflect.DeepEqual(got[2:], succ) &&
				!(len(got) == 2 && len(succ) == 0) {
				t.Fatalf("g%d c%d: AppendSuccessors with prefix = %v", g, c, got)
			}
		}
	}
}

// TestKernelMatchesModelAccessors verifies the flat Kernel view returns the
// same data the Model methods do, for both packed and standalone models.
func TestKernelMatchesModelAccessors(t *testing.T) {
	m := paperdata.RunningExample()
	models := make([]*Model, m.Rows())
	for g := range models {
		models[g] = Build(m, g, 0.15)
	}
	PackModels(models)
	kerns := Kernels(models)
	if len(kerns) != len(models) {
		t.Fatalf("Kernels: %d views for %d models", len(kerns), len(models))
	}
	for g, mod := range models {
		k := kerns[g]
		n := mod.Conditions()
		if len(k.Order) != n || len(k.Rank) != n || len(k.SuccStart) != n ||
			len(k.PredEnd) != n || len(k.UpLen) != n || len(k.DownLen) != n ||
			len(k.ValueByCond) != n {
			t.Fatalf("g%d: kernel stripe lengths != %d", g, n)
		}
		for c := 0; c < n; c++ {
			r := k.Rank[c]
			if r != mod.Rank(c) || k.Order[r] != c {
				t.Fatalf("g%d c%d: kernel rank/order mismatch", g, c)
			}
			if k.SuccStart[r] != mod.SuccessorStartRank(c) ||
				k.PredEnd[r] != mod.PredecessorEndRank(c) {
				t.Fatalf("g%d c%d: kernel frontiers mismatch", g, c)
			}
			if k.UpLen[r] != mod.MaxUpChainFrom(c) || k.DownLen[r] != mod.MaxDownChainFrom(c) {
				t.Fatalf("g%d c%d: kernel chain lengths mismatch", g, c)
			}
			if k.ValueByCond[c] != mod.ValueOf(c) {
				t.Fatalf("g%d c%d: kernel value mismatch", g, c)
			}
		}
	}
}
