package rwave

// Packed columnar storage for whole model sets.
//
// A mining run touches every gene's model arrays millions of times; built
// one by one, those arrays are ~nGenes scattered heap objects and the hot
// loops spend their time pointer-chasing between them. PackModels rewrites a
// freshly built model set into two contiguous gene-major backing
// allocations — every gene's order|rank|succStart|predEnd|upLen|downLen
// stripes adjacent in one []int, its values|valueByCond stripes adjacent in
// one []float64 — and rebinds each Model's slice fields to full-capacity
// views of its stripes. The models keep their identity (same *Model
// pointers, same method behaviour, bit-identical float64 values), so a slab
// is purely a memory layout of the same model set: core.ModelKey, the
// service and dist model caches, and every Mine*WithModels contract are
// unaffected.

// ModelSlab owns the packed backing arrays of one model set. The zero value
// is an empty slab. A slab is immutable after PackModels returns and safe to
// share between any number of concurrent readers.
type ModelSlab struct {
	genes, conds int
	ints         []int     // gene-major: slabIntStripes stripes of conds ints per gene
	floats       []float64 // gene-major: slabFloatStripes stripes of conds float64s per gene
}

// Genes returns the number of models packed into the slab.
func (s ModelSlab) Genes() int { return s.genes }

// Conditions returns the per-gene condition count.
func (s ModelSlab) Conditions() int { return s.conds }

// Words returns the backing sizes: total ints and total float64s.
func (s ModelSlab) Words() (ints, floats int) { return len(s.ints), len(s.floats) }

// Contains reports whether mod's arrays are views into this slab (i.e. mod's
// order stripe starts at some gene's stripe base).
func (s ModelSlab) Contains(mod *Model) bool {
	if s.conds == 0 || len(mod.order) != s.conds {
		return false
	}
	stride := slabIntStripes * s.conds
	for g := 0; g < s.genes; g++ {
		if &mod.order[0] == &s.ints[g*stride] {
			return true
		}
	}
	return false
}

// PackModels copies every model's per-gene arrays into one contiguous int
// backing and one contiguous float64 backing (gene-major SoA stripes, in the
// bindStripes order) and rebinds the models' slice fields to views of those
// stripes. The models slice and its *Model pointers are unchanged; only the
// storage behind them moves. All models must come from the same matrix (same
// condition count) and must not be shared with a concurrent reader during
// the pack — in practice PackModels runs once, at the end of a build, before
// the set escapes.
//
// The pack performs exactly two heap allocations regardless of gene count
// (the int backing and the float backing); the per-model mini-slabs it
// replaces become garbage. Float64 values are copied bit for bit.
func PackModels(models []*Model) ModelSlab {
	if len(models) == 0 {
		return ModelSlab{}
	}
	n := models[0].Conditions()
	s := ModelSlab{
		genes:  len(models),
		conds:  n,
		ints:   make([]int, slabIntStripes*n*len(models)),
		floats: make([]float64, slabFloatStripes*n*len(models)),
	}
	for g, mod := range models {
		ints := s.ints[slabIntStripes*n*g : slabIntStripes*n*(g+1)]
		floats := s.floats[slabFloatStripes*n*g : slabFloatStripes*n*(g+1)]
		copy(ints[0*n:1*n], mod.order)
		copy(ints[1*n:2*n], mod.rank)
		copy(ints[2*n:3*n], mod.succStart)
		copy(ints[3*n:4*n], mod.predEnd)
		copy(ints[4*n:5*n], mod.upLen)
		copy(ints[5*n:6*n], mod.downLen)
		copy(floats[0*n:1*n], mod.values)
		copy(floats[1*n:2*n], mod.valueByCond)
		mod.bindStripes(ints, floats, n)
	}
	return s
}

// Kernel is the flat read-only view of one model used by the miner's inner
// loops: every Lemma 3.1 and Equation 7 lookup is a direct slice load, with
// no method dispatch and no *Model dereference. The slices alias the model's
// (usually slab-backed) storage — treat them as immutable; writing through a
// Kernel corrupts the model.
type Kernel struct {
	Order       []int     // rank -> condition index
	Rank        []int     // condition index -> rank
	SuccStart   []int     // rank -> smallest successor rank (== len(Order) when none)
	PredEnd     []int     // rank -> largest predecessor rank (== -1 when none)
	UpLen       []int     // rank -> longest upward regulation chain from this rank
	DownLen     []int     // rank -> longest downward regulation chain from this rank
	ValueByCond []float64 // condition index -> expression value
}

// Kernel returns the flat view of mod.
func (mod *Model) Kernel() Kernel {
	return Kernel{
		Order:       mod.order,
		Rank:        mod.rank,
		SuccStart:   mod.succStart,
		PredEnd:     mod.predEnd,
		UpLen:       mod.upLen,
		DownLen:     mod.downLen,
		ValueByCond: mod.valueByCond,
	}
}

// Kernels returns one flat view per model, in one contiguous slice. The
// result is cheap to build (one allocation, header copies only), immutable by
// convention, and safe to share read-only across concurrent miners.
func Kernels(models []*Model) []Kernel {
	out := make([]Kernel, len(models))
	for g, mod := range models {
		out[g] = mod.Kernel()
	}
	return out
}
