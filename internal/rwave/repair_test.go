package rwave

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"regcluster/internal/matrix"
)

// modelsIdentical compares every array and scalar of two models exactly —
// the byte-identity contract Repair promises against a cold build.
func modelsIdentical(a, b *Model) bool {
	return a.gene == b.gene &&
		math.Float64bits(a.gamma) == math.Float64bits(b.gamma) &&
		reflect.DeepEqual(a.order, b.order) &&
		reflect.DeepEqual(a.rank, b.rank) &&
		floatsIdentical(a.values, b.values) &&
		floatsIdentical(a.valueByCond, b.valueByCond) &&
		reflect.DeepEqual(a.succStart, b.succStart) &&
		reflect.DeepEqual(a.predEnd, b.predEnd) &&
		reflect.DeepEqual(a.upLen, b.upLen) &&
		reflect.DeepEqual(a.downLen, b.downLen) &&
		reflect.DeepEqual(a.Pointers(), b.Pointers())
}

func floatsIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// grownRow builds a 1-gene matrix over row and its extension by extra values.
func grownRow(row, extra []float64) (base, grown *matrix.Matrix) {
	base = matrix.FromRows([][]float64{row})
	grown = matrix.FromRows([][]float64{append(append([]float64(nil), row...), extra...)})
	return base, grown
}

// TestRepairMatchesBuild is the differential property test: across random
// rows, random appended suffixes (duplicates and ties included) and a range
// of absolute thresholds, Repair's fast path must produce a model identical
// in every field to a cold BuildAbsolute of the grown row.
func TestRepairMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		oldN := 1 + rng.Intn(20)
		k := 1 + rng.Intn(10)
		vals := make([]float64, oldN+k)
		for i := range vals {
			// Coarse grid so value ties (the stable-sort edge case) occur often.
			vals[i] = float64(rng.Intn(8))
		}
		gamma := float64(rng.Intn(4)) // 0 included: strict-inequality edge
		base, grown := grownRow(vals[:oldN], vals[oldN:])
		old := BuildAbsolute(base, 0, gamma)
		repaired, fast := Repair(old, grown, 0, gamma)
		if !fast {
			t.Fatalf("trial %d: fast path refused (oldN=%d k=%d γ=%v)", trial, oldN, k, gamma)
		}
		cold := BuildAbsolute(grown, 0, gamma)
		if !modelsIdentical(repaired, cold) {
			t.Fatalf("trial %d: repaired model differs from cold build\nrepaired: %v\ncold:     %v",
				trial, repaired, cold)
		}
	}
}

// TestRepairPackedModelSource: the fast path must also work when the old
// model lives in a packed slab (the form the service's model cache holds).
func TestRepairPackedModelSource(t *testing.T) {
	base := matrix.FromRows([][]float64{{1, 5, 3, 9}, {2, 2, 8, 4}})
	grown := matrix.FromRows([][]float64{{1, 5, 3, 9, 4, 0}, {2, 2, 8, 4, 6, 2}})
	models := []*Model{BuildAbsolute(base, 0, 2), BuildAbsolute(base, 1, 2)}
	PackModels(models)
	for g, old := range models {
		repaired, fast := Repair(old, grown, g, 2)
		if !fast {
			t.Fatalf("gene %d: fast path refused for packed source", g)
		}
		if cold := BuildAbsolute(grown, g, 2); !modelsIdentical(repaired, cold) {
			t.Fatalf("gene %d: packed-source repair differs from cold build", g)
		}
	}
}

// TestRepairFallbacks: every soundness violation must take the cold path
// (fast == false) and still return the correct model for the grown row.
func TestRepairFallbacks(t *testing.T) {
	base, grown := grownRow([]float64{3, 1, 4, 1}, []float64{5, 9})
	old := BuildAbsolute(base, 0, 1)
	cases := []struct {
		name  string
		old   *Model
		m     *matrix.Matrix
		gene  int
		gamma float64
	}{
		{"nil old model", nil, grown, 0, 1},
		{"gamma drift", old, grown, 0, 2},
		{"gene mismatch", old, matrix.FromRows([][]float64{{9, 9, 9, 9, 9, 9}, {3, 1, 4, 1, 5, 9}}), 1, 1},
		{"no appended conditions", old, base, 0, 1},
		{"prefix rewritten", old, matrix.FromRows([][]float64{{3, 1, 7, 1, 5, 9}}), 0, 1},
	}
	for _, tc := range cases {
		got, fast := Repair(tc.old, tc.m, tc.gene, tc.gamma)
		if fast {
			t.Errorf("%s: fast path ran on an ineligible input", tc.name)
		}
		if cold := BuildAbsolute(tc.m, tc.gene, tc.gamma); !modelsIdentical(got, cold) {
			t.Errorf("%s: fallback model differs from cold build", tc.name)
		}
	}
}

// TestRepairNaNPrefixFallsBack: a NaN in the shared prefix never compares
// equal, so Repair must refuse the merge and rebuild cold.
func TestRepairNaNPrefixFallsBack(t *testing.T) {
	base := matrix.FromRows([][]float64{{1, math.NaN(), 3}})
	old := &Model{gene: 0, gamma: 1}
	old.bindStripes(make([]int, slabIntStripes*3), make([]float64, slabFloatStripes*3), 3)
	copy(old.valueByCond, base.Row(0))
	grown := matrix.FromRows([][]float64{{1, math.NaN(), 3, 4}})
	if _, fast := Repair(old, grown, 0, 1); fast {
		t.Fatal("fast path ran over a NaN prefix")
	}
}
