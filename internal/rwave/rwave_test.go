package rwave

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"regcluster/internal/matrix"
	"regcluster/internal/paperdata"
)

// condIdx converts 1-based paper condition labels to 0-based indices.
func condIdx(labels ...int) []int {
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = l - 1
	}
	return out
}

func TestGammaEquation4(t *testing.T) {
	m := paperdata.RunningExample()
	// γ = 0.15: γ1 = γ2 = 0.15*30 = 4.5, γ3 = 0.15*12 = 1.8 (Section 3.1).
	wants := []float64{4.5, 4.5, 1.8}
	for g, want := range wants {
		mod := Build(m, g, 0.15)
		if math.Abs(mod.Gamma()-want) > 1e-12 {
			t.Errorf("g%d: gamma = %v, want %v", g+1, mod.Gamma(), want)
		}
	}
}

func TestRunningExampleOrdering(t *testing.T) {
	m := paperdata.RunningExample()
	mod := Build(m, 0, 0.15) // g1
	// g1 sorted: c7 c2 c10 c9 c5 c8 c1 c4 c6 c3 (ties c10/c9 and c5/c8 broken
	// by ascending condition index: c9 < c10 numerically, so c9 first; c5 < c8
	// so c5 first).
	want := condIdx(7, 2, 9, 10, 5, 8, 1, 4, 6, 3)
	got := make([]int, mod.Conditions())
	for r := range got {
		got[r] = mod.Order(r)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("g1 order = %v, want %v", got, want)
	}
	for r, c := range want {
		if mod.Rank(c) != r {
			t.Errorf("Rank(c%d) = %d, want %d", c+1, mod.Rank(c), r)
		}
	}
}

func TestRunningExamplePointers(t *testing.T) {
	m := paperdata.RunningExample()
	// Figure 3, RWave^0.15. Pointers expressed over sorted ranks.
	cases := []struct {
		gene int
		want []Pointer
	}{
		{0, []Pointer{{1, 2}, {3, 4}, {5, 6}, {6, 9}}}, // g1
		{1, []Pointer{{1, 2}, {3, 4}, {4, 5}, {5, 6}}}, // g2
		{2, []Pointer{{1, 2}, {3, 4}, {5, 6}, {6, 9}}}, // g3
	}
	for _, tc := range cases {
		mod := Build(m, tc.gene, 0.15)
		if got := mod.Pointers(); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("g%d pointers = %v, want %v\nmodel: %s", tc.gene+1, got, tc.want, mod)
		}
	}
}

func TestLemma31ExampleFromPaper(t *testing.T) {
	// Section 3.1: "the regulation predecessors of c6 for g1 ... c7, c2, c10,
	// c9, c8 and c5 are exactly the regulation predecessors of c6. ... there
	// are no regulation successors of c6."
	m := paperdata.RunningExample()
	mod := Build(m, 0, 0.15)
	c6 := 5
	preds := mod.Predecessors(c6)
	wantSet := map[int]bool{6: true, 1: true, 9: true, 8: true, 7: true, 4: true} // c7 c2 c10 c9 c8 c5
	if len(preds) != len(wantSet) {
		t.Fatalf("predecessors of c6 = %v", preds)
	}
	for _, c := range preds {
		if !wantSet[c] {
			t.Fatalf("unexpected predecessor c%d", c+1)
		}
	}
	if succ := mod.Successors(c6); len(succ) != 0 {
		t.Fatalf("c6 should have no successors, got %v", succ)
	}
}

func TestIsUpRegulatedMatchesEquation3(t *testing.T) {
	m := paperdata.RunningExample()
	mod := Build(m, 1, 0.15) // g2, γ2 = 4.5
	// d(g2,c7)=45, d(g2,c5)=30: up-regulated from c5 to c7.
	if !mod.IsUpRegulated(4, 6) {
		t.Error("g2 should be up-regulated from c5 to c7")
	}
	// d(g2,c8)=43, d(g2,c4)=43.5: 0.5 < 4.5, not regulated either way.
	if mod.IsUpRegulated(7, 3) || mod.IsUpRegulated(3, 7) {
		t.Error("c8-c4 difference below γ2 must not be a regulation")
	}
}

// bruteSuccessors computes regulation successors directly from Equation 3.
func bruteSuccessors(m *matrix.Matrix, gene, c int, gammaAbs float64) map[int]bool {
	out := map[int]bool{}
	for j := 0; j < m.Cols(); j++ {
		if m.At(gene, j)-m.At(gene, c) > gammaAbs {
			out[j] = true
		}
	}
	return out
}

func brutePredecessors(m *matrix.Matrix, gene, c int, gammaAbs float64) map[int]bool {
	out := map[int]bool{}
	for j := 0; j < m.Cols(); j++ {
		if m.At(gene, c)-m.At(gene, j) > gammaAbs {
			out[j] = true
		}
	}
	return out
}

func toSet(xs []int) map[int]bool {
	out := map[int]bool{}
	for _, x := range xs {
		out[x] = true
	}
	return out
}

// TestLemma31Exactness checks that the pointer-based predecessor/successor
// queries are exactly the Equation 3 sets on random data — i.e. that under
// this construction Lemma 3.1 is an equality.
func TestLemma31Exactness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		m := matrix.New(1, n)
		for j := 0; j < n; j++ {
			// Coarse values create many ties, stressing tie handling.
			m.Set(0, j, float64(rng.Intn(10)))
		}
		gamma := []float64{0, 0.5, 1, 2.5}[rng.Intn(4)]
		mod := BuildAbsolute(m, 0, gamma)
		for c := 0; c < n; c++ {
			gotS := toSet(mod.Successors(c))
			wantS := bruteSuccessors(m, 0, c, gamma)
			if !reflect.DeepEqual(gotS, wantS) {
				t.Fatalf("trial %d: successors(c%d) = %v, want %v\n%s\nrow %v γ=%v",
					trial, c, gotS, wantS, mod, m.Row(0), gamma)
			}
			gotP := toSet(mod.Predecessors(c))
			wantP := brutePredecessors(m, 0, c, gamma)
			if !reflect.DeepEqual(gotP, wantP) {
				t.Fatalf("trial %d: predecessors(c%d) = %v, want %v\n%s", trial, c, gotP, wantP, mod)
			}
			for j := 0; j < n; j++ {
				if mod.IsSuccessor(c, j) != wantS[j] {
					t.Fatalf("IsSuccessor(c%d,c%d) mismatch", c, j)
				}
				if mod.IsPredecessor(c, j) != wantP[j] {
					t.Fatalf("IsPredecessor(c%d,c%d) mismatch", c, j)
				}
			}
		}
	}
}

// bruteMaxUpChain finds the longest successively up-regulated chain starting
// at condition c by exhaustive DFS.
func bruteMaxUpChain(m *matrix.Matrix, gene, c int, gammaAbs float64) int {
	best := 1
	for j := 0; j < m.Cols(); j++ {
		if m.At(gene, j)-m.At(gene, c) > gammaAbs {
			if l := 1 + bruteMaxUpChain(m, gene, j, gammaAbs); l > best {
				best = l
			}
		}
	}
	return best
}

func TestMaxChainLengthsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		m := matrix.New(1, n)
		for j := 0; j < n; j++ {
			m.Set(0, j, float64(rng.Intn(8)))
		}
		gamma := []float64{0, 1, 1.5}[rng.Intn(3)]
		mod := BuildAbsolute(m, 0, gamma)
		for c := 0; c < n; c++ {
			want := bruteMaxUpChain(m, 0, c, gamma)
			if got := mod.MaxUpChainFrom(c); got != want {
				t.Fatalf("trial %d: MaxUpChainFrom(c%d) = %d, want %d\n%s", trial, c, got, want, mod)
			}
		}
	}
}

func TestDownChainMirrorsUpChain(t *testing.T) {
	// Down-chains in a matrix are up-chains in its negation.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		m := matrix.New(1, n)
		neg := matrix.New(1, n)
		for j := 0; j < n; j++ {
			v := rng.Float64() * 10
			m.Set(0, j, v)
			neg.Set(0, j, -v)
		}
		gamma := rng.Float64() * 3
		mod := BuildAbsolute(m, 0, gamma)
		negMod := BuildAbsolute(neg, 0, gamma)
		for c := 0; c < n; c++ {
			if mod.MaxDownChainFrom(c) != negMod.MaxUpChainFrom(c) {
				t.Fatalf("down/up mirror mismatch at c%d", c)
			}
		}
	}
}

func TestPointerInvariants(t *testing.T) {
	// Property: pointers have strictly increasing A and B, every pointer
	// certifies a regulation, and no pointer embeds another.
	f := func(vals []float64, gseed uint8) bool {
		if len(vals) < 2 || len(vals) > 20 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return true
			}
		}
		m := matrix.FromRows([][]float64{vals})
		gamma := float64(gseed%100) / 100 // relative γ in [0, 0.99]
		mod := Build(m, 0, gamma)
		ps := mod.Pointers()
		for i, p := range ps {
			if p.A >= p.B {
				return false
			}
			if mod.Value(p.B)-mod.Value(p.A) <= mod.Gamma() {
				return false
			}
			if i > 0 && (ps[i-1].A >= p.A || ps[i-1].B >= p.B) {
				return false
			}
			// Minimality: (A+1, B) and (A, B-1) must NOT be valid pointers
			// (otherwise this one is not a bordering pair).
			if p.B-p.A > 1 {
				if mod.Value(p.B)-mod.Value(p.A+1) > mod.Gamma() &&
					mod.Value(p.B-1)-mod.Value(p.A) > mod.Gamma() {
					// Both shrinks valid means an embedded pointer exists.
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantRowHasNoPointers(t *testing.T) {
	m := matrix.FromRows([][]float64{{5, 5, 5, 5}})
	mod := Build(m, 0, 0.5)
	if len(mod.Pointers()) != 0 {
		t.Fatalf("constant row pointers: %v", mod.Pointers())
	}
	if mod.MaxChain() != 1 {
		t.Fatalf("constant row MaxChain = %d", mod.MaxChain())
	}
}

func TestGammaZeroStrictness(t *testing.T) {
	// With γ = 0, regulation requires a strictly positive difference: equal
	// values must not regulate each other.
	m := matrix.FromRows([][]float64{{1, 1, 2, 3}})
	mod := Build(m, 0, 0)
	if mod.IsSuccessor(0, 1) || mod.IsSuccessor(1, 0) {
		t.Error("equal values must not be successors at γ=0")
	}
	if !mod.IsSuccessor(0, 2) || !mod.IsSuccessor(2, 3) {
		t.Error("strict increases must be successors at γ=0")
	}
	if mod.MaxUpChainFrom(0) != 3 { // c0 -> c2 -> c3
		t.Errorf("MaxUpChainFrom(0) = %d, want 3", mod.MaxUpChainFrom(0))
	}
}

func TestBuildValidation(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, 2}})
	for _, bad := range []float64{-0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Build with gamma=%v did not panic", bad)
				}
			}()
			Build(m, 0, bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BuildAbsolute with negative gamma did not panic")
			}
		}()
		BuildAbsolute(m, 0, -1)
	}()
}

func TestBuildAll(t *testing.T) {
	m := paperdata.RunningExample()
	models := BuildAll(m, 0.15)
	if len(models) != 3 {
		t.Fatalf("BuildAll returned %d models", len(models))
	}
	for g, mod := range models {
		if mod.Gene() != g {
			t.Errorf("model %d reports gene %d", g, mod.Gene())
		}
		if mod.Conditions() != 10 {
			t.Errorf("model %d has %d conditions", g, mod.Conditions())
		}
	}
}

func TestValueAccessors(t *testing.T) {
	m := paperdata.RunningExample()
	mod := Build(m, 0, 0.15)
	if mod.ValueOf(6) != -15 { // c7
		t.Errorf("ValueOf(c7) = %v", mod.ValueOf(6))
	}
	if mod.Value(0) != -15 {
		t.Errorf("Value(rank 0) = %v", mod.Value(0))
	}
	if mod.String() == "" {
		t.Error("empty String()")
	}
}

func TestMaxChainRunningExample(t *testing.T) {
	// The paper's discovered chain has 5 conditions; each gene's model must
	// admit an up- or down-chain of length >= 5 at γ = 0.15.
	m := paperdata.RunningExample()
	for g := 0; g < 3; g++ {
		mod := Build(m, g, 0.15)
		if mod.MaxChain() < 5 {
			t.Errorf("g%d MaxChain = %d, want >= 5", g+1, mod.MaxChain())
		}
	}
	// Specifically, from c7 the up-chain of g1 and g3 has length 5 and the
	// down-chain of g2 has length 5 (Figure 6 level 1 analysis).
	c7 := 6
	if l := Build(m, 0, 0.15).MaxUpChainFrom(c7); l != 5 {
		t.Errorf("g1 up-chain from c7 = %d, want 5", l)
	}
	if l := Build(m, 2, 0.15).MaxUpChainFrom(c7); l != 5 {
		t.Errorf("g3 up-chain from c7 = %d, want 5", l)
	}
	if l := Build(m, 1, 0.15).MaxDownChainFrom(c7); l != 5 {
		t.Errorf("g2 down-chain from c7 = %d, want 5", l)
	}
}
