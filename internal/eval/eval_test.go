package eval

import (
	"math"
	"testing"

	"regcluster/internal/core"
	"regcluster/internal/paperdata"
	"regcluster/internal/synthetic"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{[]int{1, 2, 3}, []int{2, 3, 4}, 0.5},
		{[]int{1}, []int{1}, 1},
		{[]int{1}, []int{2}, 0},
		{nil, nil, 0},
		{[]int{1, 1, 2}, []int{2, 2}, 0.5}, // dedup
	}
	for _, tc := range cases {
		if got := Jaccard(tc.a, tc.b); !almost(got, tc.want) {
			t.Errorf("Jaccard(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestGeneMatchScore(t *testing.T) {
	m1 := [][]int{{1, 2, 3}, {10, 11}}
	m2 := [][]int{{1, 2, 3}, {10, 12}}
	// First cluster matches perfectly (1.0); second best-matches {10,12}
	// with Jaccard 1/3.
	want := (1.0 + 1.0/3) / 2
	if got := GeneMatchScore(m1, m2); !almost(got, want) {
		t.Errorf("GeneMatchScore = %v, want %v", got, want)
	}
	if GeneMatchScore(nil, m2) != 0 {
		t.Error("empty from-set should score 0")
	}
	if GeneMatchScore(m1, nil) != 0 {
		t.Error("empty to-set should score 0")
	}
}

func TestRelevanceRecoveryPerfect(t *testing.T) {
	mined := []*core.Bicluster{
		{Chain: []int{0, 1, 2}, PMembers: []int{1, 2}, NMembers: []int{3}},
	}
	truth := []synthetic.Embedded{
		{Chain: []int{0, 1, 2}, PMembers: []int{1, 2}, NMembers: []int{3}},
	}
	rel, rec := RelevanceRecovery(mined, truth)
	if rel != 1 || rec != 1 {
		t.Errorf("rel=%v rec=%v, want 1,1", rel, rec)
	}
}

func TestOverlaps(t *testing.T) {
	a := &core.Bicluster{Chain: []int{0, 1}, PMembers: []int{0, 1}}
	b := &core.Bicluster{Chain: []int{0, 1}, PMembers: []int{0, 1}}
	c := &core.Bicluster{Chain: []int{5, 6}, PMembers: []int{9}}
	s := Overlaps([]*core.Bicluster{a, b, c})
	if s.Pairs != 3 {
		t.Fatalf("Pairs = %d", s.Pairs)
	}
	if s.Max != 1 || s.Min != 0 {
		t.Errorf("Min/Max = %v/%v, want 0/1", s.Min, s.Max)
	}
	if !almost(s.Mean, 1.0/3) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if empty := Overlaps(nil); empty.Pairs != 0 || empty.Max != 0 {
		t.Error("empty Overlaps should be zero")
	}
}

func TestNonOverlapping(t *testing.T) {
	big := &core.Bicluster{Chain: []int{0, 1, 2}, PMembers: []int{0, 1, 2, 3}}
	mid := &core.Bicluster{Chain: []int{0, 1}, PMembers: []int{0, 1}} // overlaps big
	far := &core.Bicluster{Chain: []int{5, 6}, PMembers: []int{8, 9}}
	got := NonOverlapping([]*core.Bicluster{mid, far, big}, 3)
	if len(got) != 2 {
		t.Fatalf("selected %d clusters, want 2: %v", len(got), got)
	}
	if got[0] != big || got[1] != far {
		t.Errorf("selection wrong: %v", got)
	}
	if got := NonOverlapping([]*core.Bicluster{big, far}, 1); len(got) != 1 || got[0] != big {
		t.Error("k limit ignored or priority wrong")
	}
}

func TestMaximalOnly(t *testing.T) {
	big := &core.Bicluster{Chain: []int{0, 1, 2}, PMembers: []int{0, 1, 2}}
	sub := &core.Bicluster{Chain: []int{0, 1}, PMembers: []int{0, 1}}
	other := &core.Bicluster{Chain: []int{4, 5}, PMembers: []int{7, 8}}
	got := MaximalOnly([]*core.Bicluster{sub, big, other})
	if len(got) != 2 || got[0] != big || got[1] != other {
		t.Fatalf("MaximalOnly = %v", got)
	}
	// Exact duplicates: exactly one survives.
	dup1 := &core.Bicluster{Chain: []int{0}, PMembers: []int{0}}
	dup2 := &core.Bicluster{Chain: []int{0}, PMembers: []int{0}}
	if got := MaximalOnly([]*core.Bicluster{dup1, dup2}); len(got) != 1 {
		t.Fatalf("duplicate handling: %v", got)
	}
}

func TestValidateAll(t *testing.T) {
	m := paperdata.RunningExample()
	p := core.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1}
	good := []*core.Bicluster{
		{Chain: paperdata.RunningExampleChain(), PMembers: []int{0, 2}, NMembers: []int{1}},
	}
	if err := ValidateAll(m, p, good); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	bad := append(good, &core.Bicluster{Chain: []int{0, 1, 2, 3, 4}, PMembers: []int{0, 1, 2}})
	if err := ValidateAll(m, p, bad); err == nil {
		t.Fatal("invalid set accepted")
	}
}

// TestEndToEndMetrics: the miner on a planted dataset should achieve high
// recovery.
func TestEndToEndMetrics(t *testing.T) {
	cfg := synthetic.Config{Genes: 300, Conds: 15, Clusters: 4, AvgClusterGenes: 12, Seed: 8}
	m, truth, err := synthetic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Mine(m, core.Params{MinG: 8, MinC: 5, Gamma: 0.1, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	_, rec := RelevanceRecovery(res.Clusters, truth)
	if rec < 0.9 {
		t.Errorf("recovery = %v, want >= 0.9", rec)
	}
	if err := ValidateAll(m, core.Params{MinG: 8, MinC: 5, Gamma: 0.1, Epsilon: 0.01}, res.Clusters); err != nil {
		t.Error(err)
	}
}

func TestCellJaccardAndMatchScore(t *testing.T) {
	a := &core.Bicluster{Chain: []int{0, 1}, PMembers: []int{0, 1}}                  // cells {0,1}x{0,1}
	b := &core.Bicluster{Chain: []int{1, 2}, PMembers: []int{1}, NMembers: []int{2}} // cells {1,2}x{1,2}
	// Intersection: genes {1} x conds {1} = 1 cell; union = 4+4-1 = 7.
	if got := CellJaccard(a, b); !almost(got, 1.0/7) {
		t.Errorf("CellJaccard = %v, want 1/7", got)
	}
	if CellJaccard(a, a) != 1 {
		t.Error("self CellJaccard != 1")
	}
	empty := &core.Bicluster{}
	if CellJaccard(empty, empty) != 0 {
		t.Error("empty CellJaccard should be 0")
	}
	score := CellMatchScore([]*core.Bicluster{a}, []*core.Bicluster{a, b})
	if score != 1 {
		t.Errorf("CellMatchScore = %v, want 1 (exact match available)", score)
	}
	if CellMatchScore(nil, []*core.Bicluster{a}) != 0 {
		t.Error("empty from-set should score 0")
	}
}
