// Package eval provides cluster-quality metrics for the experiments: match
// scores against planted ground truth, the pairwise overlap statistics of
// Section 5.2, subsumption filtering and whole-result validation.
package eval

import (
	"fmt"
	"sort"

	"regcluster/internal/core"
	"regcluster/internal/matrix"
	"regcluster/internal/synthetic"
)

// Jaccard returns |a ∩ b| / |a ∪ b| over integer sets (inputs need not be
// sorted or deduplicated). The Jaccard of two empty sets is 0.
func Jaccard(a, b []int) float64 {
	sa, sb := toSet(a), toSet(b)
	inter := 0
	for x := range sa {
		if sb[x] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// GeneMatchScore is the Prelić gene match score S(M1 → M2): the average over
// clusters of M1 of the best gene-set Jaccard against any cluster of M2. It
// is 0 when M1 is empty.
func GeneMatchScore(from, to [][]int) float64 {
	if len(from) == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range from {
		best := 0.0
		for _, b := range to {
			if j := Jaccard(a, b); j > best {
				best = j
			}
		}
		sum += best
	}
	return sum / float64(len(from))
}

// CellJaccard returns the Jaccard index of the CELL sets (gene × condition
// pairs) of two biclusters — stricter than gene-set Jaccard because the
// subspaces must also align.
func CellJaccard(a, b *core.Bicluster) float64 {
	inter := a.OverlapCells(b)
	union := a.Cells() + b.Cells() - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// CellMatchScore is the cell-level Prelić score S(M1 → M2): the average over
// clusters of M1 of the best CellJaccard against any cluster of M2.
func CellMatchScore(from, to []*core.Bicluster) float64 {
	if len(from) == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range from {
		best := 0.0
		for _, b := range to {
			if j := CellJaccard(a, b); j > best {
				best = j
			}
		}
		sum += best
	}
	return sum / float64(len(from))
}

// RelevanceRecovery scores a mined result against planted ground truth:
// relevance = S(mined → truth) penalizes spurious clusters, recovery =
// S(truth → mined) penalizes missed ones. Both use gene-set Jaccard.
func RelevanceRecovery(mined []*core.Bicluster, truth []synthetic.Embedded) (relevance, recovery float64) {
	ms := make([][]int, len(mined))
	for i, b := range mined {
		ms[i] = b.Genes()
	}
	ts := make([][]int, len(truth))
	for i, e := range truth {
		ts[i] = e.Genes()
	}
	return GeneMatchScore(ms, ts), GeneMatchScore(ts, ms)
}

// OverlapStats summarizes the pairwise cell-overlap fractions of a result
// set — the Section 5.2 statistic ("the percentage of overlapping cells ...
// generally ranges from 0% to 85%").
type OverlapStats struct {
	Min, Max, Mean float64
	Pairs          int
}

// Overlaps computes OverlapStats over all unordered cluster pairs. With
// fewer than two clusters all fields are zero.
func Overlaps(clusters []*core.Bicluster) OverlapStats {
	var s OverlapStats
	if len(clusters) < 2 {
		return s
	}
	s.Min = 1
	sum := 0.0
	for i := 0; i < len(clusters); i++ {
		for j := i + 1; j < len(clusters); j++ {
			f := clusters[i].OverlapFraction(clusters[j])
			if f < s.Min {
				s.Min = f
			}
			if f > s.Max {
				s.Max = f
			}
			sum += f
			s.Pairs++
		}
	}
	s.Mean = sum / float64(s.Pairs)
	return s
}

// NonOverlapping greedily selects up to k clusters with zero pairwise cell
// overlap, preferring larger clusters — the paper reports "three
// non-overlapping bi-reg-clusters" this way. Fewer than k may be returned.
func NonOverlapping(clusters []*core.Bicluster, k int) []*core.Bicluster {
	order := make([]*core.Bicluster, len(clusters))
	copy(order, clusters)
	sort.SliceStable(order, func(a, b int) bool { return order[a].Cells() > order[b].Cells() })
	var out []*core.Bicluster
	for _, c := range order {
		if len(out) == k {
			break
		}
		ok := true
		for _, chosen := range out {
			if c.OverlapCells(chosen) > 0 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// MaximalOnly drops every cluster whose gene set and condition set are both
// subsets of another cluster's (the optional maximality post-filter of
// DESIGN.md §6). Order of survivors is preserved.
func MaximalOnly(clusters []*core.Bicluster) []*core.Bicluster {
	var out []*core.Bicluster
	for i, b := range clusters {
		subsumed := false
		for j, o := range clusters {
			if i == j {
				continue
			}
			if covers(o, b) && (!covers(b, o) || j < i) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, b)
		}
	}
	return out
}

// covers reports genes(b) ⊆ genes(a) and conditions(b) ⊆ conditions(a).
func covers(a, b *core.Bicluster) bool {
	return subset(b.Genes(), a.Genes()) && subset(b.Conditions(), a.Conditions())
}

func subset(small, big []int) bool {
	s := toSet(big)
	for _, x := range small {
		if !s[x] {
			return false
		}
	}
	return true
}

// ValidateAll checks every cluster of a result against Definition 3.2 and
// returns the first failure, if any.
func ValidateAll(m *matrix.Matrix, p core.Params, clusters []*core.Bicluster) error {
	for i, b := range clusters {
		if err := core.CheckBicluster(m, p, b); err != nil {
			return fmt.Errorf("eval: cluster %d: %w", i, err)
		}
	}
	return nil
}

func toSet(xs []int) map[int]bool {
	s := make(map[int]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}
