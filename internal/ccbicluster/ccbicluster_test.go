package ccbicluster

import (
	"math/rand"
	"testing"

	"regcluster/internal/matrix"
)

// plantAdditive embeds a perfect additive (pure shifting) bicluster into a
// noisy background.
func plantAdditive(t *testing.T, seed int64) (*matrix.Matrix, []int, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New(30, 12)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			m.Set(i, j, rng.Float64()*100)
		}
	}
	rows := []int{2, 5, 9, 14, 20}
	cols := []int{1, 3, 6, 8, 10}
	base := []float64{5, 40, 15, 60, 25}
	for ri, r := range rows {
		shift := float64(ri) * 7
		for ci, c := range cols {
			m.Set(r, c, base[ci]+shift)
		}
	}
	return m, rows, cols
}

func TestMSRZeroForAdditive(t *testing.T) {
	m, rows, cols := plantAdditive(t, 1)
	if msr := m.MeanSquaredResidue(rows, cols); msr > 1e-18 {
		t.Fatalf("MSR of planted additive block = %v, want ~0", msr)
	}
}

func TestMineRecoversPlantedBicluster(t *testing.T) {
	m, rows, cols := plantAdditive(t, 2)
	got, err := Mine(m, DefaultParams(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no bicluster found")
	}
	b := got[0]
	if b.MSR > 5 {
		t.Fatalf("result MSR %v exceeds delta", b.MSR)
	}
	// The planted block should be (mostly) inside the result.
	inRows := toSet(b.Rows)
	inCols := toSet(b.Cols)
	hitR, hitC := 0, 0
	for _, r := range rows {
		if inRows[r] {
			hitR++
		}
	}
	for _, c := range cols {
		if inCols[c] {
			hitC++
		}
	}
	// Cheng & Church is a greedy heuristic; demand most, not all, of the
	// planted block back.
	if hitR < 4 || hitC < 3 {
		t.Errorf("planted block poorly recovered: %d/5 rows, %d/5 cols (got rows %v cols %v)",
			hitR, hitC, b.Rows, b.Cols)
	}
}

func TestInvertedRowAddition(t *testing.T) {
	// A mirrored row (negative correlation on the additive scale) should be
	// added as an inverted row.
	m := matrix.New(6, 6)
	base := []float64{1, 4, 2, 6, 3, 5}
	for i := 0; i < 5; i++ {
		for j, v := range base {
			m.Set(i, j, v+float64(i))
		}
	}
	for j, v := range base {
		m.Set(5, j, 10-v) // mirror
	}
	got, err := Mine(m, DefaultParams(0.001, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no bicluster")
	}
	b := got[0]
	if len(b.InvertedRows) != 1 || b.InvertedRows[0] != 5 {
		t.Errorf("inverted rows = %v, want [5]", b.InvertedRows)
	}
	if !toSet(b.Rows)[5] {
		t.Error("inverted row must also appear in Rows")
	}
}

func TestMaskingYieldsDistinctBiclusters(t *testing.T) {
	m, _, _ := plantAdditive(t, 3)
	got, err := Mine(m, DefaultParams(30, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Skipf("only %d biclusters found", len(got))
	}
	// Consecutive results must not be identical.
	for i := 1; i < len(got); i++ {
		if equalInts(got[i].Rows, got[i-1].Rows) && equalInts(got[i].Cols, got[i-1].Cols) {
			t.Fatal("masking failed: identical consecutive biclusters")
		}
	}
}

func TestShiftingAndScalingEscapesMSR(t *testing.T) {
	// The reg-cluster paper's point: a shifting-and-scaling pattern is NOT a
	// low-MSR bicluster. Scale one row of a perfect additive block.
	m := matrix.New(4, 5)
	base := []float64{0, 10, 4, 14, 8}
	for i := 0; i < 4; i++ {
		for j, v := range base {
			m.Set(i, j, v)
		}
	}
	rows := []int{0, 1, 2, 3}
	cols := []int{0, 1, 2, 3, 4}
	if m.MeanSquaredResidue(rows, cols) != 0 {
		t.Fatal("setup broken")
	}
	m.ShiftScaleRow(3, 3, 2) // now a shifting-and-scaling relative
	if msr := m.MeanSquaredResidue(rows, cols); msr < 1 {
		t.Fatalf("MSR = %v; scaling should inflate the residue", msr)
	}
}

func TestMineValidation(t *testing.T) {
	m := matrix.New(5, 5)
	if _, err := Mine(m, Params{Delta: -1, Alpha: 1.2, N: 1}); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := Mine(m, Params{Delta: 1, Alpha: 0.5, N: 1}); err == nil {
		t.Error("alpha < 1 accepted")
	}
	if _, err := Mine(m, Params{Delta: 1, Alpha: 1.2, N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	got, err := Mine(matrix.New(1, 1), DefaultParams(1, 1))
	if err != nil || got != nil {
		t.Error("degenerate matrix should return no clusters, no error")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	m, _, _ := plantAdditive(t, 4)
	a, err := Mine(m, DefaultParams(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(m, DefaultParams(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic result count")
	}
	for i := range a {
		if !equalInts(a[i].Rows, b[i].Rows) || !equalInts(a[i].Cols, b[i].Cols) {
			t.Fatal("non-deterministic biclusters")
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
