// Package ccbicluster implements the Cheng & Church δ-bicluster algorithm
// (ISMB 2000), the heuristic mean-squared-residue biclustering the reg-cluster
// paper cites as the origin of the regulation-focused view of expression
// analysis and as a baseline that cannot capture shifting-and-scaling
// patterns (its residue score is zero only for purely additive patterns).
//
// The algorithm greedily carves one low-residue submatrix at a time from the
// matrix: multiple node deletion, single node deletion, node addition
// (including inverted rows, Cheng & Church's device for negative
// correlation on the additive scale), then masks the found bicluster with
// random values and repeats.
package ccbicluster

import (
	"fmt"
	"math/rand"
	"sort"

	"regcluster/internal/matrix"
)

// Params configures the miner.
type Params struct {
	// Delta is the maximum acceptable mean squared residue.
	Delta float64
	// Alpha is the multiple-node-deletion aggressiveness (paper uses 1.2).
	Alpha float64
	// N is the number of biclusters to mine.
	N int
	// Seed drives the masking randomness.
	Seed int64
	// MultipleThreshold is the matrix size above which multiple node
	// deletion is used (the paper uses 100).
	MultipleThreshold int
}

// DefaultParams returns the settings of the original paper (δ must still be
// chosen per dataset).
func DefaultParams(delta float64, n int) Params {
	return Params{Delta: delta, Alpha: 1.2, N: n, MultipleThreshold: 100}
}

// Bicluster is one δ-bicluster. InvertedRows lists member rows whose
// *mirror image* fits the bicluster (negative correlation on the additive
// scale); they are also present in Rows.
type Bicluster struct {
	Rows, Cols   []int
	InvertedRows []int
	MSR          float64
}

// Mine extracts up to p.N δ-biclusters from m. The input matrix is not
// modified (masking happens on a copy).
func Mine(m *matrix.Matrix, p Params) ([]Bicluster, error) {
	if p.Delta < 0 || p.N < 1 {
		return nil, fmt.Errorf("ccbicluster: need Delta >= 0 and N >= 1, got %v/%d", p.Delta, p.N)
	}
	if p.Alpha < 1 {
		return nil, fmt.Errorf("ccbicluster: Alpha %v must be >= 1", p.Alpha)
	}
	if m.Rows() < 2 || m.Cols() < 2 {
		return nil, nil
	}
	work := m.Clone()
	rng := rand.New(rand.NewSource(p.Seed))
	lo, hi := m.MinMax()
	var out []Bicluster
	for k := 0; k < p.N; k++ {
		b := mineOne(work, p)
		if len(b.Rows) < 2 || len(b.Cols) < 2 {
			break
		}
		out = append(out, b)
		// Mask the found cells with uniform noise so the next round finds a
		// different bicluster.
		for _, i := range b.Rows {
			for _, j := range b.Cols {
				work.Set(i, j, lo+rng.Float64()*(hi-lo))
			}
		}
	}
	return out, nil
}

// state tracks the working submatrix.
type state struct {
	m          *matrix.Matrix
	rows, cols []int
}

func (s *state) msr() float64 { return s.m.MeanSquaredResidue(s.rows, s.cols) }

// means returns rowMean[i], colMean[j] and the overall mean of the current
// submatrix.
func (s *state) means() (rowMean, colMean []float64, all float64) {
	rowMean = make([]float64, len(s.rows))
	colMean = make([]float64, len(s.cols))
	for ri, r := range s.rows {
		for ci, c := range s.cols {
			v := s.m.At(r, c)
			rowMean[ri] += v
			colMean[ci] += v
			all += v
		}
	}
	nr, nc := float64(len(s.rows)), float64(len(s.cols))
	for ri := range rowMean {
		rowMean[ri] /= nc
	}
	for ci := range colMean {
		colMean[ci] /= nr
	}
	all /= nr * nc
	return rowMean, colMean, all
}

// rowResidues returns d(i) for every current row; colResidues likewise.
func (s *state) rowResidues() []float64 {
	rowMean, colMean, all := s.means()
	out := make([]float64, len(s.rows))
	for ri, r := range s.rows {
		sum := 0.0
		for ci, c := range s.cols {
			res := s.m.At(r, c) - rowMean[ri] - colMean[ci] + all
			sum += res * res
		}
		out[ri] = sum / float64(len(s.cols))
	}
	return out
}

func (s *state) colResidues() []float64 {
	rowMean, colMean, all := s.means()
	out := make([]float64, len(s.cols))
	for ci, c := range s.cols {
		sum := 0.0
		for ri, r := range s.rows {
			res := s.m.At(r, c) - rowMean[ri] - colMean[ci] + all
			sum += res * res
		}
		out[ci] = sum / float64(len(s.rows))
	}
	return out
}

func mineOne(m *matrix.Matrix, p Params) Bicluster {
	s := &state{m: m, rows: seq(m.Rows()), cols: seq(m.Cols())}
	multipleNodeDeletion(s, p)
	singleNodeDeletion(s, p)
	inverted := nodeAddition(s, p)
	sort.Ints(s.rows)
	sort.Ints(s.cols)
	sort.Ints(inverted)
	return Bicluster{Rows: s.rows, Cols: s.cols, InvertedRows: inverted, MSR: s.msr()}
}

// multipleNodeDeletion removes all rows (then columns) whose mean residue
// exceeds Alpha×MSR, while the submatrix is large and MSR > Delta.
func multipleNodeDeletion(s *state, p Params) {
	for s.msr() > p.Delta {
		changed := false
		if len(s.rows) > p.MultipleThreshold {
			h := s.msr()
			d := s.rowResidues()
			var keep []int
			for ri, r := range s.rows {
				if d[ri] <= p.Alpha*h {
					keep = append(keep, r)
				}
			}
			if len(keep) >= 2 && len(keep) < len(s.rows) {
				s.rows = keep
				changed = true
			}
		}
		if len(s.cols) > p.MultipleThreshold {
			h := s.msr()
			d := s.colResidues()
			var keep []int
			for ci, c := range s.cols {
				if d[ci] <= p.Alpha*h {
					keep = append(keep, c)
				}
			}
			if len(keep) >= 2 && len(keep) < len(s.cols) {
				s.cols = keep
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// singleNodeDeletion removes the single row or column with the largest mean
// residue until MSR <= Delta.
func singleNodeDeletion(s *state, p Params) {
	for s.msr() > p.Delta && (len(s.rows) > 2 || len(s.cols) > 2) {
		dr := s.rowResidues()
		dc := s.colResidues()
		bestRow, bestRowVal := -1, -1.0
		for ri := range s.rows {
			if dr[ri] > bestRowVal {
				bestRow, bestRowVal = ri, dr[ri]
			}
		}
		bestCol, bestColVal := -1, -1.0
		for ci := range s.cols {
			if dc[ci] > bestColVal {
				bestCol, bestColVal = ci, dc[ci]
			}
		}
		if bestRowVal >= bestColVal && len(s.rows) > 2 {
			s.rows = append(s.rows[:bestRow], s.rows[bestRow+1:]...)
		} else if len(s.cols) > 2 {
			s.cols = append(s.cols[:bestCol], s.cols[bestCol+1:]...)
		} else {
			s.rows = append(s.rows[:bestRow], s.rows[bestRow+1:]...)
		}
	}
}

// nodeAddition grows the bicluster back: columns then rows whose mean residue
// does not exceed the current MSR, including inverted rows. Returns the
// inverted row ids added.
func nodeAddition(s *state, p Params) (inverted []int) {
	invertedSet := map[int]bool{}
	for {
		changed := false
		// Columns.
		h := s.msr()
		rowMean, _, all := s.means()
		inCols := toSet(s.cols)
		for c := 0; c < s.m.Cols(); c++ {
			if inCols[c] {
				continue
			}
			colMean := 0.0
			for _, r := range s.rows {
				colMean += s.m.At(r, c)
			}
			colMean /= float64(len(s.rows))
			sum := 0.0
			for ri, r := range s.rows {
				res := s.m.At(r, c) - rowMean[ri] - colMean + all
				sum += res * res
			}
			if sum/float64(len(s.rows)) <= h {
				s.cols = append(s.cols, c)
				inCols[c] = true
				changed = true
			}
		}
		// Rows (straight and inverted).
		h = s.msr()
		_, colMean2, all2 := s.means()
		inRows := toSet(s.rows)
		for r := 0; r < s.m.Rows(); r++ {
			if inRows[r] {
				continue
			}
			rm := 0.0
			for _, c := range s.cols {
				rm += s.m.At(r, c)
			}
			rm /= float64(len(s.cols))
			straight, inverse := 0.0, 0.0
			for ci, c := range s.cols {
				res := s.m.At(r, c) - rm - colMean2[ci] + all2
				straight += res * res
				ires := -s.m.At(r, c) + rm - colMean2[ci] + all2
				inverse += ires * ires
			}
			n := float64(len(s.cols))
			if straight/n <= h {
				s.rows = append(s.rows, r)
				inRows[r] = true
				changed = true
			} else if inverse/n <= h {
				s.rows = append(s.rows, r)
				inRows[r] = true
				invertedSet[r] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for r := range invertedSet {
		inverted = append(inverted, r)
	}
	return inverted
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func toSet(xs []int) map[int]bool {
	s := make(map[int]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}
