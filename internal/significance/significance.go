// Package significance estimates empirical p-values for mined reg-clusters
// by permutation testing: each gene's profile is independently shuffled
// (destroying co-regulation while preserving every per-gene value
// distribution and therefore every RWave^γ chain-length profile), the miner
// is re-run, and the null distribution of the best cluster "volume" is
// compared against each observed cluster.
//
// This extends the paper, which relies on GO term enrichment for biological
// significance; the permutation test gives a *statistical* significance
// measure that needs no annotation substrate.
package significance

import (
	"fmt"
	"math/rand"
	"sort"

	"regcluster/internal/core"
	"regcluster/internal/matrix"
)

// Volume is the cluster statistic compared under the null: genes ×
// conditions, the area of the bicluster. Larger areas are exponentially less
// likely by chance.
func Volume(b *core.Bicluster) int { return b.Cells() }

// Options configures the test.
type Options struct {
	// Rounds is the number of null permutations (default 20; more rounds
	// sharpen the p-value resolution: min p = 1/(Rounds+1)).
	Rounds int
	// Seed drives the shuffling.
	Seed int64
	// MaxClustersPerRound caps mining work per null round (0 = unlimited).
	MaxClustersPerRound int
}

// Result pairs a cluster with its empirical p-value.
type Result struct {
	Cluster *core.Bicluster
	// PValue is (1 + #null rounds whose best volume >= this cluster's
	// volume) / (1 + Rounds) — the standard add-one permutation p-value.
	PValue float64
}

// Test scores every cluster of a mining result against the permutation null.
// It reruns the miner Rounds times on shuffled data, so it costs Rounds× the
// original mining time.
func Test(m *matrix.Matrix, p core.Params, clusters []*core.Bicluster, opt Options) ([]Result, error) {
	if opt.Rounds <= 0 {
		opt.Rounds = 20
	}
	if len(clusters) == 0 {
		return nil, nil
	}
	nullBest := make([]int, 0, opt.Rounds)
	rng := rand.New(rand.NewSource(opt.Seed))
	pNull := p
	pNull.MaxClusters = opt.MaxClustersPerRound
	for round := 0; round < opt.Rounds; round++ {
		shuffled := shuffleRows(m, rng)
		res, err := core.Mine(shuffled, pNull)
		if err != nil {
			return nil, fmt.Errorf("significance: null round %d: %w", round, err)
		}
		best := 0
		for _, b := range res.Clusters {
			if v := Volume(b); v > best {
				best = v
			}
		}
		nullBest = append(nullBest, best)
	}
	sort.Ints(nullBest)

	out := make([]Result, len(clusters))
	for i, b := range clusters {
		v := Volume(b)
		// Count null rounds with best >= v.
		idx := sort.SearchInts(nullBest, v)
		ge := len(nullBest) - idx
		out[i] = Result{
			Cluster: b,
			PValue:  float64(1+ge) / float64(1+opt.Rounds),
		}
	}
	return out, nil
}

// AdjustFDR applies the Benjamini–Hochberg step-up procedure to the test
// results, returning the q-value (adjusted p-value) per result in the same
// order. Selecting results with q <= α controls the false discovery rate at
// α across the whole cluster set.
func AdjustFDR(results []Result) []float64 {
	n := len(results)
	if n == 0 {
		return nil
	}
	type idxP struct {
		idx int
		p   float64
	}
	byP := make([]idxP, n)
	for i, r := range results {
		byP[i] = idxP{i, r.PValue}
	}
	sort.Slice(byP, func(a, b int) bool { return byP[a].p < byP[b].p })
	q := make([]float64, n)
	minSoFar := 1.0
	for rank := n - 1; rank >= 0; rank-- {
		v := byP[rank].p * float64(n) / float64(rank+1)
		if v < minSoFar {
			minSoFar = v
		}
		if minSoFar > 1 {
			minSoFar = 1
		}
		q[byP[rank].idx] = minSoFar
	}
	return q
}

// shuffleRows returns a copy of m with every row independently permuted.
func shuffleRows(m *matrix.Matrix, rng *rand.Rand) *matrix.Matrix {
	out := m.Clone()
	for g := 0; g < out.Rows(); g++ {
		row := out.Row(g)
		rng.Shuffle(len(row), func(i, j int) { row[i], row[j] = row[j], row[i] })
	}
	return out
}
