package significance

import (
	"math/rand"
	"testing"

	"regcluster/internal/core"
	"regcluster/internal/matrix"
	"regcluster/internal/synthetic"
)

func TestPlantedClusterIsSignificant(t *testing.T) {
	cfg := synthetic.Config{Genes: 120, Conds: 12, Clusters: 1, AvgClusterGenes: 14, Seed: 5}
	m, truth, err := synthetic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{MinG: 8, MinC: 5, Gamma: 0.1, Epsilon: 0.01}
	res, err := core.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters mined")
	}
	scored, err := Test(m, p, res.Clusters, Options{Rounds: 19, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The planted 14×~6 cluster cannot arise from per-gene shuffles: its
	// p-value should be the minimum 1/20.
	planted := truth[0].Genes()
	foundSignificant := false
	for _, r := range scored {
		if len(r.Cluster.Genes()) >= len(planted) && r.PValue <= 0.05 {
			foundSignificant = true
		}
		if r.PValue <= 0 || r.PValue > 1 {
			t.Fatalf("p-value out of range: %v", r.PValue)
		}
	}
	if !foundSignificant {
		t.Error("planted cluster not significant at 0.05")
	}
}

func TestRandomDataClustersAreNotSignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := matrix.New(80, 8)
	for g := 0; g < 80; g++ {
		for c := 0; c < 8; c++ {
			m.Set(g, c, rng.Float64())
		}
	}
	p := core.Params{MinG: 2, MinC: 3, Gamma: 0.01, Epsilon: 1.0}
	res, err := core.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Skip("no chance clusters on this seed")
	}
	scored, err := Test(m, p, res.Clusters, Options{Rounds: 19, Seed: 2, MaxClustersPerRound: 5000})
	if err != nil {
		t.Fatal(err)
	}
	// Chance clusters on iid data should mostly NOT be significant: the
	// null is the same process.
	significant := 0
	for _, r := range scored {
		if r.PValue <= 0.05 {
			significant++
		}
	}
	if frac := float64(significant) / float64(len(scored)); frac > 0.25 {
		t.Errorf("%.0f%% of chance clusters marked significant", 100*frac)
	}
}

func TestEmptyInput(t *testing.T) {
	m := matrix.New(2, 2)
	got, err := Test(m, core.Params{MinG: 2, MinC: 2, Gamma: 0.1}, nil, Options{})
	if err != nil || got != nil {
		t.Fatalf("empty input: %v %v", got, err)
	}
}

func TestVolume(t *testing.T) {
	b := &core.Bicluster{Chain: []int{1, 2, 3}, PMembers: []int{0, 1}, NMembers: []int{2}}
	if Volume(b) != 9 {
		t.Errorf("Volume = %d", Volume(b))
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	cfg := synthetic.Config{Genes: 60, Conds: 8, Clusters: 1, AvgClusterGenes: 8, Seed: 3}
	m, _, err := synthetic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{MinG: 5, MinC: 4, Gamma: 0.1, Epsilon: 0.01}
	res, err := core.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Test(m, p, res.Clusters, Options{Rounds: 9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Test(m, p, res.Clusters, Options{Rounds: 9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].PValue != b[i].PValue {
			t.Fatal("nondeterministic p-values under fixed seed")
		}
	}
}

func TestAdjustFDR(t *testing.T) {
	mk := func(ps ...float64) []Result {
		out := make([]Result, len(ps))
		for i, p := range ps {
			out[i] = Result{PValue: p}
		}
		return out
	}
	// Classic BH example: p = .01, .02, .03, .04, .05 with n=5:
	// q_i = min over j>=i of p_j*n/j, computed from the back.
	q := AdjustFDR(mk(0.01, 0.02, 0.03, 0.04, 0.05))
	want := []float64{0.05, 0.05, 0.05, 0.05, 0.05}
	for i := range q {
		if d := q[i] - want[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("q = %v, want %v", q, want)
		}
	}
	// Monotone and clamped.
	q = AdjustFDR(mk(0.9, 0.001, 0.5))
	if q[1] > q[2] || q[2] > q[0] {
		t.Fatalf("q not monotone with p: %v", q)
	}
	for _, v := range q {
		if v < 0 || v > 1 {
			t.Fatalf("q out of range: %v", q)
		}
	}
	// The smallest p gets q = p*n/1.
	if d := q[1] - 0.003; d > 1e-12 || d < -1e-12 {
		t.Fatalf("q[1] = %v, want 0.003", q[1])
	}
	if AdjustFDR(nil) != nil {
		t.Fatal("empty input should return nil")
	}
}
