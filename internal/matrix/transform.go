package matrix

import "math"

// LogTransform returns a new matrix whose cells are log(v) (natural
// logarithm). This is the global transformation that pCluster and δ-cluster
// assume turns scaling patterns into shifting patterns (Equation 1 of the
// paper). Non-positive cells map to NaN.
func (m *Matrix) LogTransform() *Matrix {
	out := m.Clone()
	for k, v := range out.data {
		if v <= 0 {
			out.data[k] = math.NaN()
		} else {
			out.data[k] = math.Log(v)
		}
	}
	return out
}

// ExpTransform returns a new matrix whose cells are e^v. This is the global
// transformation that triCluster assumes turns shifting patterns into scaling
// patterns (Equation 2 of the paper).
func (m *Matrix) ExpTransform() *Matrix {
	out := m.Clone()
	for k, v := range out.data {
		out.data[k] = math.Exp(v)
	}
	return out
}

// ShiftScaleRow applies d := s1*d + s2 to every cell of row i in place.
// Shifting-and-scaling a profile preserves reg-cluster membership structure
// up to the regulation threshold rescaling (Equation 5).
func (m *Matrix) ShiftScaleRow(i int, s1, s2 float64) {
	row := m.Row(i)
	for j, v := range row {
		row[j] = s1*v + s2
	}
}

// NormalizeRows z-scores every row in place: x := (x-mean)/std. Rows with
// zero standard deviation are centered only. Returns the receiver for
// chaining.
func (m *Matrix) NormalizeRows() *Matrix {
	for i := 0; i < m.rows; i++ {
		mean := m.RowMean(i)
		std := m.RowStd(i)
		row := m.Row(i)
		for j, v := range row {
			if std > 0 {
				row[j] = (v - mean) / std
			} else {
				row[j] = v - mean
			}
		}
	}
	return m
}

// Transpose returns a new matrix with rows and columns exchanged.
func (m *Matrix) Transpose() *Matrix {
	t := NewWithNames(m.colNames, m.rowNames)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}
