// Package matrix provides the dense, labelled 2-D expression matrix that all
// mining algorithms in this repository operate on.
//
// A Matrix holds one float64 value per (gene, condition) cell in a single
// contiguous backing slice, together with row (gene) and column (condition)
// names. Rows correspond to genes and columns to experimental conditions,
// following the convention of the reg-cluster paper.
package matrix

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of expression levels with named rows
// (genes) and columns (conditions). The zero value is an empty matrix; use
// New or NewWithNames to construct a usable one.
type Matrix struct {
	rows, cols int
	data       []float64
	rowNames   []string
	colNames   []string
}

// New returns a rows×cols matrix initialized to zero with generated names
// ("g0".."gN" for rows, "c0".."cM" for columns).
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", rows, cols))
	}
	m := &Matrix{
		rows:     rows,
		cols:     cols,
		data:     make([]float64, rows*cols),
		rowNames: make([]string, rows),
		colNames: make([]string, cols),
	}
	for i := range m.rowNames {
		m.rowNames[i] = fmt.Sprintf("g%d", i)
	}
	for j := range m.colNames {
		m.colNames[j] = fmt.Sprintf("c%d", j)
	}
	return m
}

// NewWithNames returns a matrix with the given row and column names, sized
// len(rowNames)×len(colNames), initialized to zero. The name slices are
// copied.
func NewWithNames(rowNames, colNames []string) *Matrix {
	m := New(len(rowNames), len(colNames))
	copy(m.rowNames, rowNames)
	copy(m.colNames, colNames)
	return m
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied. It panics if the rows are ragged.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("matrix: ragged input: row %d has %d values, want %d", i, len(r), cols))
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Rows returns the number of rows (genes).
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns (conditions).
func (m *Matrix) Cols() int { return m.cols }

// At returns the value at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the value at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a view of row i as a slice. The returned slice aliases the
// matrix storage; mutating it mutates the matrix.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// RowName returns the name of row i.
func (m *Matrix) RowName(i int) string { return m.rowNames[i] }

// ColName returns the name of column j.
func (m *Matrix) ColName(j int) string { return m.colNames[j] }

// SetRowName assigns the name of row i.
func (m *Matrix) SetRowName(i int, name string) { m.rowNames[i] = name }

// SetColName assigns the name of column j.
func (m *Matrix) SetColName(j int, name string) { m.colNames[j] = name }

// RowNames returns a copy of the row name list.
func (m *Matrix) RowNames() []string {
	out := make([]string, m.rows)
	copy(out, m.rowNames)
	return out
}

// ColNames returns a copy of the column name list.
func (m *Matrix) ColNames() []string {
	out := make([]string, m.cols)
	copy(out, m.colNames)
	return out
}

// RowIndex returns the index of the row with the given name, or -1.
func (m *Matrix) RowIndex(name string) int {
	for i, n := range m.rowNames {
		if n == name {
			return i
		}
	}
	return -1
}

// ColIndex returns the index of the column with the given name, or -1.
func (m *Matrix) ColIndex(name string) int {
	for j, n := range m.colNames {
		if n == name {
			return j
		}
	}
	return -1
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		rows:     m.rows,
		cols:     m.cols,
		data:     make([]float64, len(m.data)),
		rowNames: make([]string, len(m.rowNames)),
		colNames: make([]string, len(m.colNames)),
	}
	copy(c.data, m.data)
	copy(c.rowNames, m.rowNames)
	copy(c.colNames, m.colNames)
	return c
}

// Submatrix extracts the submatrix induced by the given row and column index
// lists (in the given order, duplicates allowed). Names are carried over.
func (m *Matrix) Submatrix(rowIdx, colIdx []int) *Matrix {
	s := New(len(rowIdx), len(colIdx))
	for i, r := range rowIdx {
		s.rowNames[i] = m.rowNames[r]
		for j, c := range colIdx {
			s.data[i*s.cols+j] = m.At(r, c)
		}
	}
	for j, c := range colIdx {
		s.colNames[j] = m.colNames[c]
	}
	return s
}

// Equal reports whether the two matrices have identical shape, names and
// values (exact float comparison; NaNs compare equal to NaNs).
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.rowNames {
		if m.rowNames[i] != o.rowNames[i] {
			return false
		}
	}
	for j := range m.colNames {
		if m.colNames[j] != o.colNames[j] {
			return false
		}
	}
	for k := range m.data {
		a, b := m.data[k], o.data[k]
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			return false
		}
	}
	return true
}

// EqualWithin reports whether the two matrices have identical shape and
// values that agree within tol. Names are ignored.
func (m *Matrix) EqualWithin(o *Matrix, tol float64) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for k := range m.data {
		if math.Abs(m.data[k]-o.data[k]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact human-readable table, truncated for large
// matrices.
func (m *Matrix) String() string {
	const maxRows, maxCols = 12, 14
	s := fmt.Sprintf("matrix %dx%d\n", m.rows, m.cols)
	nr, nc := m.rows, m.cols
	if nr > maxRows {
		nr = maxRows
	}
	if nc > maxCols {
		nc = maxCols
	}
	s += "gene"
	for j := 0; j < nc; j++ {
		s += "\t" + m.colNames[j]
	}
	if nc < m.cols {
		s += "\t..."
	}
	s += "\n"
	for i := 0; i < nr; i++ {
		s += m.rowNames[i]
		for j := 0; j < nc; j++ {
			s += fmt.Sprintf("\t%.4g", m.At(i, j))
		}
		if nc < m.cols {
			s += "\t..."
		}
		s += "\n"
	}
	if nr < m.rows {
		s += "...\n"
	}
	return s
}
