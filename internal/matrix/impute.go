package matrix

import (
	"math"
	"sort"
)

// KNNImpute replaces every NaN cell with the average of the k nearest
// complete neighbour genes' values in that column — the standard KNNimpute
// procedure for microarray data (Troyanskaya et al. 2001), a better
// alternative to the row-mean fill of FillNaN. Distances are Euclidean over
// the columns observed in both genes, normalized by the number of shared
// columns. Rows with no usable neighbour fall back to the row mean. Returns
// the number of cells imputed.
func (m *Matrix) KNNImpute(k int) int {
	if k < 1 {
		k = 1
	}
	type hole struct{ row, col int }
	var holes []hole
	incomplete := map[int]bool{}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if math.IsNaN(m.At(i, j)) {
				holes = append(holes, hole{i, j})
				incomplete[i] = true
			}
		}
	}
	if len(holes) == 0 {
		return 0
	}
	// Candidate donors: rows without any NaN.
	var donors []int
	for i := 0; i < m.rows; i++ {
		if !incomplete[i] {
			donors = append(donors, i)
		}
	}

	type nb struct {
		row  int
		dist float64
	}
	neighbours := map[int][]nb{}
	for row := range incomplete {
		var ns []nb
		for _, d := range donors {
			dist, shared := partialDist(m.Row(row), m.Row(d))
			if shared == 0 {
				continue
			}
			ns = append(ns, nb{d, dist})
		}
		sort.Slice(ns, func(a, b int) bool {
			if ns[a].dist != ns[b].dist {
				return ns[a].dist < ns[b].dist
			}
			return ns[a].row < ns[b].row
		})
		if len(ns) > k {
			ns = ns[:k]
		}
		neighbours[row] = ns
	}

	imputed := 0
	for _, h := range holes {
		ns := neighbours[h.row]
		sum, n := 0.0, 0
		for _, nbr := range ns {
			v := m.At(nbr.row, h.col)
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		if n > 0 {
			m.Set(h.row, h.col, sum/float64(n))
			imputed++
			continue
		}
		// Fallback: row mean over observed cells.
		row := m.Row(h.row)
		rs, rn := 0.0, 0
		for _, v := range row {
			if !math.IsNaN(v) {
				rs += v
				rn++
			}
		}
		if rn > 0 {
			m.Set(h.row, h.col, rs/float64(rn))
		} else {
			m.Set(h.row, h.col, 0)
		}
		imputed++
	}
	return imputed
}

// partialDist returns the normalized Euclidean distance over columns where
// both rows are observed, plus the number of shared columns.
func partialDist(a, b []float64) (float64, int) {
	sum, n := 0.0, 0
	for j := range a {
		if math.IsNaN(a[j]) || math.IsNaN(b[j]) {
			continue
		}
		d := a[j] - b[j]
		sum += d * d
		n++
	}
	if n == 0 {
		return math.Inf(1), 0
	}
	return math.Sqrt(sum / float64(n)), n
}
