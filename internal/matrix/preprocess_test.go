package matrix

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestQuantileNormalizeEqualizesDistributions(t *testing.T) {
	m := FromRows([][]float64{
		{5, 2, 100},
		{2, 4, 300},
		{3, 6, 200},
		{4, 8, 400},
	})
	m.QuantileNormalize()
	// After normalization, every column holds the same multiset of values.
	ref := m.Col(0)
	sort.Float64s(ref)
	for c := 1; c < m.Cols(); c++ {
		col := m.Col(c)
		sort.Float64s(col)
		if !reflect.DeepEqual(col, ref) {
			t.Fatalf("column %d distribution differs: %v vs %v", c, col, ref)
		}
	}
	// Rank order within each column is preserved.
	if !(m.At(1, 0) < m.At(2, 0) && m.At(2, 0) < m.At(3, 0) && m.At(3, 0) < m.At(0, 0)) {
		t.Fatalf("column 0 order broken: %v", m.Col(0))
	}
}

func TestQuantileNormalizeTies(t *testing.T) {
	m := FromRows([][]float64{
		{1, 10},
		{1, 20},
		{2, 30},
	})
	m.QuantileNormalize()
	// The two tied cells in column 0 must receive identical values.
	if m.At(0, 0) != m.At(1, 0) {
		t.Fatalf("tied cells split: %v vs %v", m.At(0, 0), m.At(1, 0))
	}
	if m.At(2, 0) <= m.At(0, 0) {
		t.Fatal("order violated after tie averaging")
	}
}

func TestQuantileNormalizeEmpty(t *testing.T) {
	m := New(0, 0)
	if got := m.QuantileNormalize(); got != m {
		t.Fatal("empty matrix normalize should be a no-op returning receiver")
	}
}

func TestFilterLowVariance(t *testing.T) {
	m := FromRows([][]float64{
		{1, 1, 1},    // var 0
		{0, 10, 20},  // high var
		{5, 5.1, 5},  // tiny var
		{0, 50, 100}, // highest var
	})
	filtered, keep, err := m.FilterLowVariance(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Median threshold keeps the two most variable genes (and any at the
	// threshold).
	if len(keep) < 2 || len(keep) > 3 {
		t.Fatalf("kept %v", keep)
	}
	set := map[int]bool{}
	for _, g := range keep {
		set[g] = true
	}
	if !set[1] || !set[3] {
		t.Fatalf("high-variance genes dropped: %v", keep)
	}
	if set[0] {
		t.Fatal("constant gene survived the median filter")
	}
	if filtered.Rows() != len(keep) || filtered.Cols() != 3 {
		t.Fatalf("filtered shape %dx%d", filtered.Rows(), filtered.Cols())
	}
	// q=0 keeps everything.
	all, keepAll, err := m.FilterLowVariance(0)
	if err != nil || all.Rows() != 4 || len(keepAll) != 4 {
		t.Fatalf("q=0: %v %v", keepAll, err)
	}
	if _, _, err := m.FilterLowVariance(1.5); err == nil {
		t.Fatal("q>1 accepted")
	}
}

func TestDiscretize(t *testing.T) {
	m := FromRows([][]float64{
		{0, 5, 10},
		{3, 3, 3}, // constant
	})
	d, err := m.Discretize(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 0) != 0 || d.At(0, 1) != 1 || d.At(0, 2) != 1 {
		t.Fatalf("levels: %v", d.Row(0))
	}
	for j := 0; j < 3; j++ {
		if d.At(1, j) != 0 {
			t.Fatal("constant gene should be all level 0")
		}
	}
	// Max value lands in the top level, not out of range.
	d3, err := m.Discretize(3)
	if err != nil {
		t.Fatal(err)
	}
	if d3.At(0, 2) != 2 {
		t.Fatalf("max level = %v", d3.At(0, 2))
	}
	if _, err := m.Discretize(1); err == nil {
		t.Fatal("levels=1 accepted")
	}
	// NaN maps to level 0.
	nan := FromRows([][]float64{{0, math.NaN(), 10}})
	dn, err := nan.Discretize(2)
	if err != nil {
		t.Fatal(err)
	}
	if dn.At(0, 1) != 0 {
		t.Fatalf("NaN level = %v", dn.At(0, 1))
	}
	// Original untouched.
	if m.At(0, 1) != 5 {
		t.Fatal("Discretize mutated the receiver")
	}
}
