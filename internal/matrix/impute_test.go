package matrix

import (
	"math"
	"testing"
)

func TestKNNImputeUsesNearestNeighbours(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2, 3, 4},
		{1.1, 2.1, 3.1, 4.1},           // near row 0
		{100, 200, 300, 400},           // far
		{1.05, 2.05, math.NaN(), 4.05}, // to impute; nearest are rows 0,1
	})
	n := m.KNNImpute(2)
	if n != 1 {
		t.Fatalf("imputed %d cells, want 1", n)
	}
	got := m.At(3, 2)
	// Average of rows 0 and 1 at column 2: (3 + 3.1)/2 = 3.05.
	if math.Abs(got-3.05) > 1e-12 {
		t.Fatalf("imputed value %v, want 3.05 (not influenced by the far row)", got)
	}
}

func TestKNNImputeFallbackRowMean(t *testing.T) {
	// Only one row, so there are no complete donors: fallback to row mean.
	m := FromRows([][]float64{{2, 4, math.NaN()}})
	if n := m.KNNImpute(3); n != 1 {
		t.Fatalf("imputed %d", n)
	}
	if m.At(0, 2) != 3 {
		t.Fatalf("fallback = %v, want row mean 3", m.At(0, 2))
	}
}

func TestKNNImputeAllNaNRow(t *testing.T) {
	m := FromRows([][]float64{
		{math.NaN(), math.NaN()},
		{math.NaN(), math.NaN()},
	})
	m.KNNImpute(1)
	if m.HasNaN() {
		t.Fatal("NaNs remain")
	}
	if m.At(0, 0) != 0 {
		t.Fatalf("all-NaN fallback = %v, want 0", m.At(0, 0))
	}
}

func TestKNNImputeNoHoles(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if n := m.KNNImpute(2); n != 0 {
		t.Fatalf("imputed %d on a complete matrix", n)
	}
}

func TestKNNImputeKClamp(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2},
		{math.NaN(), 2},
	})
	if n := m.KNNImpute(0); n != 1 { // k clamped to 1
		t.Fatalf("imputed %d", n)
	}
	if m.At(1, 0) != 1 {
		t.Fatalf("imputed %v, want 1", m.At(1, 0))
	}
}

func TestPartialDist(t *testing.T) {
	a := []float64{0, math.NaN(), 3}
	b := []float64{4, 5, math.NaN()}
	d, n := partialDist(a, b)
	if n != 1 || d != 4 {
		t.Fatalf("partialDist = %v,%d", d, n)
	}
	_, n = partialDist([]float64{math.NaN()}, []float64{1})
	if n != 0 {
		t.Fatal("no shared columns should report 0")
	}
}
