package matrix

import (
	"math"
	"testing"
)

func TestNewDimensionsAndDefaults(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	if m.RowName(0) != "g0" || m.RowName(2) != "g2" {
		t.Errorf("default row names wrong: %q %q", m.RowName(0), m.RowName(2))
	}
	if m.ColName(0) != "c0" || m.ColName(3) != "c3" {
		t.Errorf("default col names wrong: %q %q", m.ColName(0), m.ColName(3))
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("cell (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 3.5)
	m.Set(1, 0, -2)
	if m.At(0, 1) != 3.5 || m.At(1, 0) != -2 || m.At(0, 0) != 0 {
		t.Fatalf("Set/At mismatch: %v", m)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("empty FromRows: %dx%d", m.Rows(), m.Cols())
	}
}

func TestRowAliasesStorage(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[1] = 99
	if m.At(0, 1) != 99 {
		t.Fatal("Row does not alias matrix storage")
	}
	// The full-slice expression must prevent append from bleeding into row 1.
	r = append(r, 7)
	if m.At(1, 0) != 3 {
		t.Fatal("append through row view corrupted the next row")
	}
}

func TestColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1) = %v", c)
	}
	c[0] = 42
	if m.At(0, 1) != 2 {
		t.Fatal("Col must return a copy")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.SetRowName(0, "alpha")
	c := m.Clone()
	c.Set(0, 0, 100)
	c.SetRowName(0, "beta")
	if m.At(0, 0) != 1 || m.RowName(0) != "alpha" {
		t.Fatal("Clone shares storage with original")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Clone not Equal to original")
	}
}

func TestSubmatrix(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	})
	s := m.Submatrix([]int{2, 0}, []int{3, 1})
	want := FromRows([][]float64{{12, 10}, {4, 2}})
	if !s.EqualWithin(want, 0) {
		t.Fatalf("Submatrix = %v", s)
	}
	if s.RowName(0) != "g2" || s.ColName(0) != "c3" {
		t.Fatalf("Submatrix names not carried: %q %q", s.RowName(0), s.ColName(0))
	}
}

func TestIndexLookups(t *testing.T) {
	m := New(2, 3)
	m.SetRowName(1, "YAL001C")
	m.SetColName(2, "heat")
	if m.RowIndex("YAL001C") != 1 || m.ColIndex("heat") != 2 {
		t.Fatal("name lookup failed")
	}
	if m.RowIndex("nope") != -1 || m.ColIndex("nope") != -1 {
		t.Fatal("missing name should return -1")
	}
}

func TestEqualNaN(t *testing.T) {
	a := FromRows([][]float64{{math.NaN(), 1}})
	b := FromRows([][]float64{{math.NaN(), 1}})
	if !a.Equal(b) {
		t.Fatal("NaN cells should compare equal in Equal")
	}
	b.Set(0, 1, 2)
	if a.Equal(b) {
		t.Fatal("different values compared equal")
	}
}

func TestNamesAreCopies(t *testing.T) {
	names := []string{"a", "b"}
	m := NewWithNames(names, []string{"x"})
	names[0] = "mutated"
	if m.RowName(0) != "a" {
		t.Fatal("NewWithNames must copy name slices")
	}
	got := m.RowNames()
	got[0] = "mutated"
	if m.RowName(0) != "a" {
		t.Fatal("RowNames must return a copy")
	}
}

func TestStringTruncates(t *testing.T) {
	m := New(30, 30)
	s := m.String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
	// Must mention shape and be truncated with ellipses.
	if !contains(s, "matrix 30x30") || !contains(s, "...") {
		t.Fatalf("String() = %q", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
