package matrix

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// ReadTSV parses a tab-separated expression matrix from r.
//
// The expected layout matches common microarray distributions (including the
// Tavazoie/Church yeast file): an optional header line whose first field
// labels the gene column followed by condition names, then one line per gene
// with the gene name in the first field and one numeric expression value per
// condition. Empty fields and the strings "NA", "NaN", "null" (any case)
// parse as NaN. Lines starting with '#' and blank lines are skipped.
func ReadTSV(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	var colNames []string
	var rowNames []string
	var rows [][]float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if colNames == nil && rows == nil {
			// Decide whether this first content line is a header: it is a
			// header unless every field after the first parses as a number.
			if isHeaderLine(fields) {
				colNames = append([]string(nil), fields[1:]...)
				continue
			}
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("matrix: line %d: need a name and at least one value", lineNo)
		}
		vals := make([]float64, len(fields)-1)
		for k, f := range fields[1:] {
			v, err := parseCell(f)
			if err != nil {
				return nil, fmt.Errorf("matrix: line %d field %d: %v", lineNo, k+2, err)
			}
			vals[k] = v
		}
		if len(rows) > 0 && len(vals) != len(rows[0]) {
			return nil, fmt.Errorf("matrix: line %d: %d values, want %d", lineNo, len(vals), len(rows[0]))
		}
		rowNames = append(rowNames, fields[0])
		rows = append(rows, vals)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("matrix: read: %v", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("matrix: empty input")
	}
	if colNames != nil && len(colNames) != len(rows[0]) {
		return nil, fmt.Errorf("matrix: header has %d conditions but rows have %d", len(colNames), len(rows[0]))
	}
	m := FromRows(rows)
	copy(m.rowNames, rowNames)
	if colNames != nil {
		copy(m.colNames, colNames)
	}
	return m, nil
}

func isHeaderLine(fields []string) bool {
	if len(fields) < 2 {
		return true
	}
	for _, f := range fields[1:] {
		if _, err := parseCell(f); err != nil {
			return true
		}
	}
	return false
}

func parseCell(s string) (float64, error) {
	s = strings.TrimSpace(s)
	switch strings.ToLower(s) {
	case "", "na", "nan", "null":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// ReadTSVFile reads a matrix from the named file via ReadTSV.
func ReadTSVFile(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTSV(f)
}

// WriteTSV writes the matrix in the format accepted by ReadTSV, including a
// header line.
func (m *Matrix) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("gene"); err != nil {
		return err
	}
	for j := 0; j < m.cols; j++ {
		bw.WriteByte('\t')
		bw.WriteString(m.colNames[j])
	}
	bw.WriteByte('\n')
	for i := 0; i < m.rows; i++ {
		bw.WriteString(m.rowNames[i])
		for j := 0; j < m.cols; j++ {
			bw.WriteByte('\t')
			v := m.data[i*m.cols+j]
			if math.IsNaN(v) {
				bw.WriteString("NA")
			} else {
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteTSVFile writes the matrix to the named file via WriteTSV.
func (m *Matrix) WriteTSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteTSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// HasNaN reports whether any cell is NaN.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.data {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

// FillNaN replaces every NaN cell with the mean of the non-NaN values of its
// row (or 0 for an all-NaN row) and returns the number of cells replaced.
// Microarray files routinely contain missing values; the miners require a
// complete matrix.
func (m *Matrix) FillNaN() int {
	replaced := 0
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		sum, n := 0.0, 0
		for _, v := range row {
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		for j, v := range row {
			if math.IsNaN(v) {
				row[j] = mean
				replaced++
			}
		}
	}
	return replaced
}
