package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRowStats(t *testing.T) {
	m := FromRows([][]float64{
		{10, -14.5, 15, 10.5, 0, 14.5, -15, 0, -5, -5}, // g1 of Table 1
	})
	if got := m.RowMin(0); got != -15 {
		t.Errorf("RowMin = %v, want -15", got)
	}
	if got := m.RowMax(0); got != 15 {
		t.Errorf("RowMax = %v, want 15", got)
	}
	if got := m.RowRange(0); got != 30 {
		t.Errorf("RowRange = %v, want 30", got)
	}
	want := (10 - 14.5 + 15 + 10.5 + 0 + 14.5 - 15 + 0 - 5 - 5) / 10
	if got := m.RowMean(0); !almost(got, want, 1e-12) {
		t.Errorf("RowMean = %v, want %v", got, want)
	}
}

func TestConstantRow(t *testing.T) {
	m := FromRows([][]float64{{3, 3, 3, 3}})
	if m.RowRange(0) != 0 || m.RowStd(0) != 0 {
		t.Fatalf("constant row: range %v std %v", m.RowRange(0), m.RowStd(0))
	}
}

func TestMeanAndMinMax(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Mean() != 2.5 {
		t.Errorf("Mean = %v", m.Mean())
	}
	min, max := m.MinMax()
	if min != 1 || max != 4 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
}

func TestPearsonRows(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8}, // perfect positive
		{4, 3, 2, 1}, // perfect negative
		{5, 5, 5, 5}, // constant
	})
	if r := m.PearsonRows(0, 1, nil); !almost(r, 1, 1e-12) {
		t.Errorf("pos corr = %v", r)
	}
	if r := m.PearsonRows(0, 2, nil); !almost(r, -1, 1e-12) {
		t.Errorf("neg corr = %v", r)
	}
	if r := m.PearsonRows(0, 3, nil); r != 0 {
		t.Errorf("constant row corr = %v, want 0", r)
	}
}

func TestPearsonSubset(t *testing.T) {
	m := FromRows([][]float64{
		{1, 100, 2, -7, 3},
		{10, -3, 20, 55, 30},
	})
	// On columns {0,2,4} the rows are perfectly positively correlated.
	if r := m.PearsonRows(0, 1, []int{0, 2, 4}); !almost(r, 1, 1e-12) {
		t.Errorf("subset corr = %v, want 1", r)
	}
}

func TestMeanSquaredResidueShiftingIsZero(t *testing.T) {
	// A pure shifting bicluster has MSR exactly 0.
	base := []float64{3, 1, 4, 1, 5}
	m := New(4, 5)
	shifts := []float64{0, 2, -1, 10}
	for i, s := range shifts {
		for j, v := range base {
			m.Set(i, j, v+s)
		}
	}
	if msr := m.MeanSquaredResidue([]int{0, 1, 2, 3}, []int{0, 1, 2, 3, 4}); !almost(msr, 0, 1e-12) {
		t.Fatalf("MSR of shifting pattern = %v, want 0", msr)
	}
}

func TestMeanSquaredResidueDetectsIncoherence(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2, 3},
		{3, 1, 9},
	})
	if msr := m.MeanSquaredResidue([]int{0, 1}, []int{0, 1, 2}); msr <= 0 {
		t.Fatalf("MSR = %v, want > 0", msr)
	}
	if msr := m.MeanSquaredResidue(nil, nil); msr != 0 {
		t.Fatalf("empty MSR = %v", msr)
	}
}

// Property: RowRange is invariant under shifting and scales with |s1| under
// ShiftScaleRow — the fact Equation 4 relies on to make γ_i follow the gene.
func TestRowRangeShiftScaleProperty(t *testing.T) {
	f := func(vals [6]float64, s1, s2 float64) bool {
		if math.Abs(s1) > 1e6 || math.Abs(s2) > 1e6 {
			return true // avoid float blow-up; quick can generate huge values
		}
		for _, v := range vals {
			if math.Abs(v) > 1e6 || math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		m := FromRows([][]float64{vals[:]})
		before := m.RowRange(0)
		m.ShiftScaleRow(0, s1, s2)
		after := m.RowRange(0)
		return almost(after, math.Abs(s1)*before, 1e-6*(1+math.Abs(s1)*before))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MeanSquaredResidue of any submatrix is non-negative.
func TestMSRNonNegativeProperty(t *testing.T) {
	f := func(vals [4][4]float64) bool {
		rows := make([][]float64, 4)
		for i := range vals {
			for j := range vals[i] {
				if math.IsNaN(vals[i][j]) || math.IsInf(vals[i][j], 0) || math.Abs(vals[i][j]) > 1e8 {
					return true
				}
			}
			rows[i] = vals[i][:]
		}
		m := FromRows(rows)
		return m.MeanSquaredResidue([]int{0, 1, 2, 3}, []int{0, 1, 2, 3}) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
