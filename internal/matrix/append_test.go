package matrix

import (
	"strings"
	"testing"
)

func TestAppendConditions(t *testing.T) {
	base := FromRows([][]float64{{1, 2}, {3, 4}})
	delta := FromRows([][]float64{{5, 6}, {7, 8}})
	delta.SetColName(0, "c2")
	delta.SetColName(1, "c3")
	got, err := AppendConditions(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{1, 2, 5, 6}, {3, 4, 7, 8}})
	if !got.Equal(want) {
		t.Fatalf("appended:\n%v\nwant:\n%v", got, want)
	}
	// Inputs untouched.
	if base.Cols() != 2 || delta.Cols() != 2 {
		t.Fatal("append mutated an input")
	}
	// Old indices stable, new conditions after old ones.
	if got.ColIndex("c1") != 1 || got.ColIndex("c2") != 2 {
		t.Fatalf("condition order: %v", got.ColNames())
	}
}

func TestAppendGenes(t *testing.T) {
	base := FromRows([][]float64{{1, 2, 3}})
	delta := FromRows([][]float64{{4, 5, 6}, {7, 8, 9}})
	delta.SetRowName(0, "g1")
	delta.SetRowName(1, "g2")
	got, err := AppendGenes(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	if !got.Equal(want) {
		t.Fatalf("appended:\n%v\nwant:\n%v", got, want)
	}
	if got.RowIndex("g0") != 0 || got.RowIndex("g2") != 2 {
		t.Fatalf("gene order: %v", got.RowNames())
	}
}

func TestAppendValidation(t *testing.T) {
	base := FromRows([][]float64{{1, 2}, {3, 4}})
	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{"conds gene count mismatch", func() error {
			_, err := AppendConditions(base, FromRows([][]float64{{9}}))
			return err
		}, "genes"},
		{"conds gene order mismatch", func() error {
			d := FromRows([][]float64{{9}, {9}})
			d.SetRowName(0, "g1")
			d.SetRowName(1, "g0")
			d.SetColName(0, "cX")
			_, err := AppendConditions(base, d)
			return err
		}, "order must match"},
		{"conds name collision", func() error {
			d := FromRows([][]float64{{9}, {9}})
			d.SetColName(0, "c0")
			_, err := AppendConditions(base, d)
			return err
		}, "already present"},
		{"conds duplicate within delta", func() error {
			d := FromRows([][]float64{{9, 9}, {9, 9}})
			d.SetColName(0, "cX")
			d.SetColName(1, "cX")
			_, err := AppendConditions(base, d)
			return err
		}, "already present"},
		{"conds empty delta", func() error {
			_, err := AppendConditions(base, New(2, 0))
			return err
		}, "no conditions"},
		{"genes cond count mismatch", func() error {
			_, err := AppendGenes(base, FromRows([][]float64{{9}}))
			return err
		}, "conditions"},
		{"genes cond order mismatch", func() error {
			d := FromRows([][]float64{{9, 9}})
			d.SetColName(0, "c1")
			d.SetColName(1, "c0")
			d.SetRowName(0, "gX")
			_, err := AppendGenes(base, d)
			return err
		}, "order must match"},
		{"genes name collision", func() error {
			d := FromRows([][]float64{{9, 9}})
			d.SetRowName(0, "g0")
			_, err := AppendGenes(base, d)
			return err
		}, "already present"},
		{"genes empty delta", func() error {
			_, err := AppendGenes(base, New(0, 2))
			return err
		}, "no genes"},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
