package matrix

import "fmt"

// Dataset deltas: growing a matrix along one axis.
//
// Live expression pipelines accumulate data incrementally — a new batch of
// experimental conditions for the same gene panel, or newly profiled genes
// under the same conditions. AppendConditions and AppendGenes construct the
// grown matrix from the base and a delta matrix, validating that the shared
// axis matches exactly (same names, same order) so the old indices of the
// base remain valid in the result. New entries always land AFTER the old
// ones; downstream consumers (the RWave repair path, the incremental miner)
// rely on that ordering invariant.

// AppendConditions returns a new matrix extending base with the delta's
// columns: the delta must carry exactly base's genes (same row names, same
// order) and only new condition names. Base rows keep their indices; delta
// conditions are appended after base's, in delta order. Neither input is
// modified.
func AppendConditions(base, delta *Matrix) (*Matrix, error) {
	if delta.rows != base.rows {
		return nil, fmt.Errorf("matrix: append-conditions delta has %d genes, base has %d", delta.rows, base.rows)
	}
	if delta.cols == 0 {
		return nil, fmt.Errorf("matrix: append-conditions delta has no conditions")
	}
	for i := range base.rowNames {
		if base.rowNames[i] != delta.rowNames[i] {
			return nil, fmt.Errorf("matrix: append-conditions delta row %d is %q, base has %q (gene order must match)",
				i, delta.rowNames[i], base.rowNames[i])
		}
	}
	if err := checkNewNames(base.colNames, delta.colNames, "condition"); err != nil {
		return nil, err
	}
	out := NewWithNames(base.RowNames(), append(base.ColNames(), delta.colNames...))
	for i := 0; i < base.rows; i++ {
		dst := out.Row(i)
		copy(dst, base.Row(i))
		copy(dst[base.cols:], delta.Row(i))
	}
	return out, nil
}

// AppendGenes returns a new matrix extending base with the delta's rows: the
// delta must carry exactly base's conditions (same column names, same order)
// and only new gene names. Base conditions keep their indices; delta genes
// are appended after base's, in delta order. Neither input is modified.
func AppendGenes(base, delta *Matrix) (*Matrix, error) {
	if delta.cols != base.cols {
		return nil, fmt.Errorf("matrix: append-genes delta has %d conditions, base has %d", delta.cols, base.cols)
	}
	if delta.rows == 0 {
		return nil, fmt.Errorf("matrix: append-genes delta has no genes")
	}
	for j := range base.colNames {
		if base.colNames[j] != delta.colNames[j] {
			return nil, fmt.Errorf("matrix: append-genes delta column %d is %q, base has %q (condition order must match)",
				j, delta.colNames[j], base.colNames[j])
		}
	}
	if err := checkNewNames(base.rowNames, delta.rowNames, "gene"); err != nil {
		return nil, err
	}
	out := NewWithNames(append(base.RowNames(), delta.rowNames...), base.ColNames())
	copy(out.data, base.data)
	copy(out.data[len(base.data):], delta.data)
	return out, nil
}

// checkNewNames rejects a delta whose appended axis collides with the base's
// existing names or repeats a name within itself.
func checkNewNames(existing, added []string, kind string) error {
	seen := make(map[string]struct{}, len(existing)+len(added))
	for _, n := range existing {
		seen[n] = struct{}{}
	}
	for _, n := range added {
		if _, dup := seen[n]; dup {
			return fmt.Errorf("matrix: delta %s %q already present", kind, n)
		}
		seen[n] = struct{}{}
	}
	return nil
}
