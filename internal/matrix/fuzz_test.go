package matrix

import (
	"strings"
	"testing"
)

// FuzzReadTSV ensures the parser never panics and that everything it accepts
// survives a write/read round trip bit-exactly: same shape, same names, same
// values (NaNs included) and therefore the same content hash.
func FuzzReadTSV(f *testing.F) {
	f.Add("gene\ta\tb\ng1\t1\t2\n")
	f.Add("g1\t1\t2\ng2\t3\t4\n")
	f.Add("# comment\n\ng1\tNA\t\n")
	f.Add("gene\ta\ng1\tnot-a-number\n")
	f.Add("\t\t\t\n")
	f.Add("g1\t1e308\t-1e308\n")
	f.Add("gene\tNA\tb\nx\t0.1\t-0\n")
	f.Add("1\t2\t3\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadTSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if m.Rows() == 0 {
			t.Fatal("accepted matrix with zero rows")
		}
		var sb strings.Builder
		if err := m.WriteTSV(&sb); err != nil {
			t.Fatalf("write after accept: %v", err)
		}
		back, err := ReadTSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("reread of own output failed: %v\noutput: %q", err, sb.String())
		}
		if !back.Equal(m) {
			t.Fatalf("round trip not value-exact:\nfirst read:\n%v\nreread:\n%v\nTSV: %q",
				m, back, sb.String())
		}
		if back.Hash() != m.Hash() {
			t.Fatalf("round trip changed content hash\nTSV: %q", sb.String())
		}
	})
}
