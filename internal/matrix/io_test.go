package matrix

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadTSVWithHeader(t *testing.T) {
	in := "gene\tcold\theat\n" +
		"g1\t1.5\t-2\n" +
		"g2\t3\t4\n"
	m, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.ColName(1) != "heat" || m.RowName(1) != "g2" {
		t.Fatalf("names: %q %q", m.ColName(1), m.RowName(1))
	}
	if m.At(0, 1) != -2 || m.At(1, 0) != 3 {
		t.Fatalf("values wrong: %v", m)
	}
}

func TestReadTSVWithoutHeader(t *testing.T) {
	in := "ORF1\t1\t2\t3\nORF2\t4\t5\t6\n"
	m, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.RowName(0) != "ORF1" {
		t.Fatalf("row name %q", m.RowName(0))
	}
	if m.ColName(0) != "c0" {
		t.Fatalf("default col name %q", m.ColName(0))
	}
}

func TestReadTSVMissingValues(t *testing.T) {
	in := "g1\t1\tNA\t\tNaN\n"
	m, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < 4; j++ {
		if !math.IsNaN(m.At(0, j)) {
			t.Fatalf("col %d = %v, want NaN", j, m.At(0, j))
		}
	}
	if !m.HasNaN() {
		t.Fatal("HasNaN = false")
	}
	if n := m.FillNaN(); n != 3 {
		t.Fatalf("FillNaN replaced %d, want 3", n)
	}
	if m.HasNaN() {
		t.Fatal("NaNs remain after FillNaN")
	}
	// Mean of the single non-NaN value (1) fills the rest.
	if m.At(0, 1) != 1 {
		t.Fatalf("filled value %v, want 1", m.At(0, 1))
	}
}

func TestReadTSVSkipsCommentsAndBlank(t *testing.T) {
	in := "# comment\n\ngene\ta\tb\n# another\ng1\t1\t2\n"
	m, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 1 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"",                         // empty
		"gene\ta\tb\ng1\t1\n",      // width mismatch vs header
		"g1\t1\t2\ng2\t1\n",        // ragged rows
		"g1\t1\t2\ng2\tfoo\tbar\n", // non-numeric after first data row fixed width
	}
	for i, in := range cases {
		if _, err := ReadTSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := FromRows([][]float64{{1.25, -3e-7, 0}, {math.NaN(), 2, 42}})
	m.SetRowName(0, "YBR001")
	m.SetColName(2, "t30")
	var sb strings.Builder
	if err := m.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Fatalf("round trip mismatch:\n%v\nvs\n%v", m, back)
	}
}

func TestFileRoundTrip(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	path := filepath.Join(t.TempDir(), "m.tsv")
	if err := m.WriteTSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := ReadTSVFile(filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestTransforms(t *testing.T) {
	m := FromRows([][]float64{{1, math.E, 0}})
	lg := m.LogTransform()
	if lg.At(0, 0) != 0 || !almost(lg.At(0, 1), 1, 1e-12) {
		t.Fatalf("log: %v", lg)
	}
	if !math.IsNaN(lg.At(0, 2)) {
		t.Fatal("log of non-positive should be NaN")
	}
	ex := FromRows([][]float64{{0, 1}}).ExpTransform()
	if ex.At(0, 0) != 1 || !almost(ex.At(0, 1), math.E, 1e-12) {
		t.Fatalf("exp: %v", ex)
	}
}

func TestNormalizeRows(t *testing.T) {
	m := FromRows([][]float64{{2, 4, 6}, {5, 5, 5}})
	m.NormalizeRows()
	if !almost(m.RowMean(0), 0, 1e-12) || !almost(m.RowStd(0), 1, 1e-12) {
		t.Fatalf("row 0 not z-scored: mean %v std %v", m.RowMean(0), m.RowStd(0))
	}
	for j := 0; j < 3; j++ {
		if m.At(1, j) != 0 {
			t.Fatal("constant row should be centered to 0")
		}
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("shape %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 || tr.At(0, 0) != 1 {
		t.Fatalf("transpose values wrong: %v", tr)
	}
	if tr.RowName(0) != m.ColName(0) {
		t.Fatal("transpose must swap names")
	}
	if !m.Transpose().Transpose().Equal(m) {
		t.Fatal("double transpose != identity")
	}
}
