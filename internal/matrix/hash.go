package matrix

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// canonicalNaN is the bit pattern every NaN cell hashes as, so a NaN's
// payload never influences the content address.
const canonicalNaN = 0x7ff8000000000001

// Hash returns a content address of the matrix: a hex-encoded SHA-256 over a
// canonical binary encoding of the shape, the row and column names, and the
// raw IEEE-754 bits of every cell. Two matrices hash equal exactly when
// Matrix.Equal holds (NaN cells included), independent of how the matrix was
// produced — parsed from TSV, built in memory, or round-tripped through
// WriteTSV. The service layer uses it to content-address uploaded datasets
// and to derive result-cache keys.
func (m *Matrix) Hash() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(len(s))
		h.Write([]byte(s))
	}
	writeInt(m.rows)
	writeInt(m.cols)
	for _, n := range m.rowNames {
		writeStr(n)
	}
	for _, n := range m.colNames {
		writeStr(n)
	}
	for _, v := range m.data {
		b := math.Float64bits(v)
		if math.IsNaN(v) {
			b = canonicalNaN
		}
		binary.LittleEndian.PutUint64(buf[:], b)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
