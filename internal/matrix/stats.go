package matrix

import "math"

// RowMin returns the minimum value in row i.
func (m *Matrix) RowMin(i int) float64 {
	row := m.Row(i)
	min := math.Inf(1)
	for _, v := range row {
		if v < min {
			min = v
		}
	}
	return min
}

// RowMax returns the maximum value in row i.
func (m *Matrix) RowMax(i int) float64 {
	row := m.Row(i)
	max := math.Inf(-1)
	for _, v := range row {
		if v > max {
			max = v
		}
	}
	return max
}

// RowRange returns RowMax(i) - RowMin(i), the expression range of gene i used
// by Equation 4 of the paper to derive the per-gene regulation threshold.
func (m *Matrix) RowRange(i int) float64 {
	row := m.Row(i)
	if len(row) == 0 {
		return 0
	}
	min, max := row[0], row[0]
	for _, v := range row[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

// RowMean returns the arithmetic mean of row i.
func (m *Matrix) RowMean(i int) float64 {
	row := m.Row(i)
	if len(row) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	return sum / float64(len(row))
}

// RowStd returns the population standard deviation of row i.
func (m *Matrix) RowStd(i int) float64 {
	row := m.Row(i)
	if len(row) == 0 {
		return 0
	}
	mean := m.RowMean(i)
	ss := 0.0
	for _, v := range row {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(row)))
}

// Mean returns the mean over all cells.
func (m *Matrix) Mean() float64 {
	if len(m.data) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range m.data {
		sum += v
	}
	return sum / float64(len(m.data))
}

// MinMax returns the global minimum and maximum over all cells.
func (m *Matrix) MinMax() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range m.data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// PearsonRows returns the Pearson correlation coefficient between rows i and
// j over the given column subset (all columns when cols is nil). It returns 0
// when either row is constant on the subset.
func (m *Matrix) PearsonRows(i, j int, cols []int) float64 {
	if cols == nil {
		cols = make([]int, m.cols)
		for k := range cols {
			cols[k] = k
		}
	}
	n := float64(len(cols))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for _, c := range cols {
		sx += m.At(i, c)
		sy += m.At(j, c)
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for _, c := range cols {
		dx := m.At(i, c) - mx
		dy := m.At(j, c) - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MeanSquaredResidue computes the mean squared residue score of Cheng &
// Church (2000) for the submatrix induced by rows and cols of m. A perfectly
// additive (pure shifting) bicluster has score 0.
func (m *Matrix) MeanSquaredResidue(rows, cols []int) float64 {
	if len(rows) == 0 || len(cols) == 0 {
		return 0
	}
	nr, nc := float64(len(rows)), float64(len(cols))
	rowMean := make([]float64, len(rows))
	colMean := make([]float64, len(cols))
	total := 0.0
	for ri, r := range rows {
		for ci, c := range cols {
			v := m.At(r, c)
			rowMean[ri] += v
			colMean[ci] += v
			total += v
		}
	}
	for ri := range rowMean {
		rowMean[ri] /= nc
	}
	for ci := range colMean {
		colMean[ci] /= nr
	}
	mean := total / (nr * nc)
	score := 0.0
	for ri, r := range rows {
		for ci, c := range cols {
			res := m.At(r, c) - rowMean[ri] - colMean[ci] + mean
			score += res * res
		}
	}
	return score / (nr * nc)
}
