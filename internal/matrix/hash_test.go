package matrix

import (
	"math"
	"strings"
	"testing"
)

func TestHashEqualMatricesAgree(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := a.Clone()
	if a.Hash() != b.Hash() {
		t.Fatal("clone hashes differently")
	}
	if len(a.Hash()) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(a.Hash()))
	}
}

func TestHashSensitivity(t *testing.T) {
	base := FromRows([][]float64{{1, 2}, {3, 4}})
	h0 := base.Hash()

	cell := base.Clone()
	cell.Set(1, 1, 4.0000001)
	if cell.Hash() == h0 {
		t.Error("cell change not reflected in hash")
	}

	name := base.Clone()
	name.SetRowName(0, "other")
	if name.Hash() == h0 {
		t.Error("row name change not reflected in hash")
	}

	col := base.Clone()
	col.SetColName(1, "other")
	if col.Hash() == h0 {
		t.Error("column name change not reflected in hash")
	}

	// Same cells, different shape (2x2 vs 1x4) must differ even with the
	// name lists emptied to the same strings.
	flat := FromRows([][]float64{{1, 2, 3, 4}})
	if flat.Hash() == FromRows([][]float64{{1, 2}, {3, 4}}).Hash() {
		t.Error("shape not reflected in hash")
	}
}

func TestHashNaNCanonical(t *testing.T) {
	a := FromRows([][]float64{{1, math.NaN()}})
	// A NaN with a different payload must hash identically.
	b := FromRows([][]float64{{1, math.Float64frombits(0x7ff8dead00000000)}})
	if a.Hash() != b.Hash() {
		t.Fatal("NaN payload leaked into the hash")
	}
	c := FromRows([][]float64{{1, 2}})
	if a.Hash() == c.Hash() {
		t.Fatal("NaN vs number hashed equal")
	}
}

func TestHashStableAcrossTSVRoundTrip(t *testing.T) {
	m := FromRows([][]float64{{1.5, -2.25, math.NaN()}, {0, 1e-9, 1e12}})
	m.SetRowName(0, "YAL001C")
	m.SetColName(2, "heat_t30")
	var sb strings.Builder
	if err := m.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != m.Hash() {
		t.Fatal("TSV round trip changed the content hash")
	}
}
