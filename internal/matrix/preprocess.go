package matrix

import (
	"fmt"
	"math"
	"sort"
)

// QuantileNormalize forces every column (condition/array) to share the same
// value distribution — the standard between-array normalization for
// microarray panels (Bolstad et al. 2003). Each column is ranked, the
// row-wise means of the sorted columns form the reference distribution, and
// every cell is replaced by the reference value of its rank (ties receive
// the average of their reference values). The receiver is modified in place
// and returned.
func (m *Matrix) QuantileNormalize() *Matrix {
	if m.rows == 0 || m.cols == 0 {
		return m
	}
	// Sort each column, accumulate the reference distribution.
	ref := make([]float64, m.rows)
	type rankedCell struct {
		row int
		v   float64
	}
	ranked := make([][]rankedCell, m.cols)
	for c := 0; c < m.cols; c++ {
		col := make([]rankedCell, m.rows)
		for r := 0; r < m.rows; r++ {
			col[r] = rankedCell{r, m.At(r, c)}
		}
		sort.Slice(col, func(a, b int) bool { return col[a].v < col[b].v })
		ranked[c] = col
		for i, rc := range col {
			ref[i] += rc.v
		}
	}
	for i := range ref {
		ref[i] /= float64(m.cols)
	}
	// Assign reference values by rank, averaging over tied runs.
	for c := 0; c < m.cols; c++ {
		col := ranked[c]
		i := 0
		for i < len(col) {
			j := i
			for j+1 < len(col) && col[j+1].v == col[i].v {
				j++
			}
			avg := 0.0
			for k := i; k <= j; k++ {
				avg += ref[k]
			}
			avg /= float64(j - i + 1)
			for k := i; k <= j; k++ {
				m.Set(col[k].row, c, avg)
			}
			i = j + 1
		}
	}
	return m
}

// FilterLowVariance returns a new matrix keeping only the genes whose
// profile variance is at least the q-th quantile of all gene variances
// (q in [0,1]; q=0.5 keeps the more variable half). The kept gene indices
// (into the original matrix) are returned alongside. Pre-filtering is how
// microarray pipelines drop the flat genes that can never show regulation.
func (m *Matrix) FilterLowVariance(q float64) (*Matrix, []int, error) {
	if q < 0 || q > 1 {
		return nil, nil, fmt.Errorf("matrix: quantile %v out of [0,1]", q)
	}
	vars := make([]float64, m.rows)
	for g := 0; g < m.rows; g++ {
		std := m.RowStd(g)
		vars[g] = std * std
	}
	sorted := append([]float64(nil), vars...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	if len(sorted) == 0 {
		return m.Clone(), nil, nil
	}
	threshold := sorted[idx]
	var keep []int
	for g, v := range vars {
		if v >= threshold {
			keep = append(keep, g)
		}
	}
	cols := make([]int, m.cols)
	for j := range cols {
		cols[j] = j
	}
	return m.Submatrix(keep, cols), keep, nil
}

// Discretize maps every gene's profile onto integer levels 0..levels-1 by
// equal-width binning of the gene's own range (per-gene, as tendency-based
// methods do). Constant genes map to level 0. Returns a new matrix.
func (m *Matrix) Discretize(levels int) (*Matrix, error) {
	if levels < 2 {
		return nil, fmt.Errorf("matrix: need at least 2 levels, got %d", levels)
	}
	out := m.Clone()
	for g := 0; g < m.rows; g++ {
		lo := m.RowMin(g)
		span := m.RowRange(g)
		row := out.Row(g)
		for j, v := range row {
			if span == 0 || math.IsNaN(v) {
				row[j] = 0
				continue
			}
			level := int((v - lo) / span * float64(levels))
			if level >= levels {
				level = levels - 1
			}
			row[j] = float64(level)
		}
	}
	return out, nil
}
