package pairwise

import (
	"reflect"
	"testing"

	"regcluster/internal/matrix"
)

func diffScore(m *matrix.Matrix, g, a, b int) float64 { return m.At(g, a) - m.At(g, b) }

func TestMineExactWindows(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 2},
		{5, 6},
		{7, 9},
	})
	// Scores c0-c1: g0=-1, g1=-1, g2=-2. With span<=0 only {g0,g1} fits.
	fit := func(lo, hi float64) bool { return hi-lo <= 0 }
	got, err := Mine(m, diffScore, fit, Params{MinG: 2, MinC: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0].Genes, []int{0, 1}) {
		t.Fatalf("got %v", got)
	}
	if !reflect.DeepEqual(got[0].Conds, []int{0, 1}) {
		t.Fatalf("conds %v", got[0].Conds)
	}
}

func TestMineMultipleWindowsBranch(t *testing.T) {
	// Two separate coherent groups on the same condition pair must both be
	// reported.
	m := matrix.FromRows([][]float64{
		{0, 1},
		{0, 1.05},
		{0, 9},
		{0, 9.05},
	})
	fit := func(lo, hi float64) bool { return hi-lo <= 0.2 }
	got, err := Mine(m, diffScore, fit, Params{MinG: 2, MinC: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 windows, got %v", got)
	}
}

func TestMineValidatesAllPairs(t *testing.T) {
	// Three conditions where each adjacent pair is fine but the far pair
	// (c0,c2) is incoherent for g1: the engine must validate (c0,c2) too.
	m := matrix.FromRows([][]float64{
		{0, 1, 2},
		{0, 1.4, 2.8},
	})
	fit := func(lo, hi float64) bool { return hi-lo <= 0.5 }
	got, err := Mine(m, diffScore, fit, Params{MinG: 2, MinC: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Pair (c0,c1): diffs -1 vs -1.4 (span .4 ok); (c1,c2): -1 vs -1.4 ok;
	// (c0,c2): -2 vs -2.8 (span .8) must kill the 3-condition cluster.
	if len(got) != 0 {
		t.Fatalf("far-pair violation not caught: %v", got)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{MinG: 0, MinC: 2}).Validate(); err == nil {
		t.Error("MinG 0 accepted")
	}
	if err := (Params{MinG: 1, MinC: 1}).Validate(); err == nil {
		t.Error("MinC 1 accepted")
	}
	if err := (Params{MinG: 1, MinC: 2}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestKeyAmbiguityGuard(t *testing.T) {
	a := Bicluster{Genes: []int{1, 2}, Conds: []int{3}}
	b := Bicluster{Genes: []int{12}, Conds: []int{3}}
	if a.Key() == b.Key() {
		t.Error("key collision between {1,2} and {12}")
	}
}

func TestNoDuplicateResults(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 2, 3, 4},
		{2, 3, 4, 5},
		{3, 4, 5, 6},
	})
	fit := func(lo, hi float64) bool { return hi-lo <= 0.001 }
	got, err := Mine(m, diffScore, fit, Params{MinG: 2, MinC: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, b := range got {
		if seen[b.Key()] {
			t.Fatalf("duplicate %v", b)
		}
		seen[b.Key()] = true
	}
	// All three genes are mutual shifts: the full 3×4 cluster must appear.
	found := false
	for _, b := range got {
		if len(b.Genes) == 3 && len(b.Conds) == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("full shifting cluster missing: %v", got)
	}
}
