// Package pairwise is a generic engine for pattern-based biclustering models
// whose validity is a *pairwise-condition window* constraint: a bicluster
// (X, C) is valid iff for every pair of conditions (a, b) in C the scores
// {score(g, a, b) : g in X} fit a coherence window.
//
// Both baseline models of the paper's comparison instantiate this engine:
// δ-pCluster (Wang et al. 2002) with score = d_ga − d_gb and absolute window
// span δ, and the triCluster-style scaling model (Zhao & Zaki 2005) with
// score = d_ga / d_gb and a multiplicative window. Because window fitting is
// monotone (subsets of a fitting gene set still fit), the engine validates
// only the new condition pairs on every extension.
package pairwise

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"regcluster/internal/matrix"
)

// ScoreFunc scores one gene on an ordered condition pair.
type ScoreFunc func(m *matrix.Matrix, gene, condA, condB int) float64

// FitFunc reports whether a score window [lo, hi] (lo <= hi) is coherent.
// It must be monotone: if [lo, hi] fits, every subinterval fits.
type FitFunc func(lo, hi float64) bool

// Params bound the search.
type Params struct {
	// MinG and MinC are the minimum bicluster dimensions.
	MinG, MinC int
	// MaxNodes, when positive, caps the search-tree size.
	MaxNodes int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.MinG < 1 || p.MinC < 2 {
		return fmt.Errorf("pairwise: need MinG >= 1 and MinC >= 2, got %d/%d", p.MinG, p.MinC)
	}
	return nil
}

// Bicluster is one mined (gene set, condition set) pair; both ascending.
type Bicluster struct {
	Genes []int
	Conds []int
}

// Key returns a canonical identity string.
func (b Bicluster) Key() string {
	var sb strings.Builder
	for i, g := range b.Genes {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(g))
	}
	sb.WriteByte('|')
	for i, c := range b.Conds {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	return sb.String()
}

// Mine enumerates all maximal-window biclusters of m under the given score
// and fit functions. Condition sets are enumerated in ascending index order
// (sets, not sequences); gene sets are refined by maximal sliding windows per
// new condition pair. Duplicate (genes, conds) results are suppressed.
func Mine(m *matrix.Matrix, score ScoreFunc, fit FitFunc, p Params) ([]Bicluster, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &engine{m: m, score: score, fit: fit, p: p, seen: map[string]bool{}}
	all := make([]int, m.Rows())
	for g := range all {
		all[g] = g
	}
	for c := 0; c <= m.Cols()-p.MinC && !e.stop; c++ {
		e.grow([]int{c}, all)
	}
	return e.out, nil
}

type engine struct {
	m     *matrix.Matrix
	score ScoreFunc
	fit   FitFunc
	p     Params
	seen  map[string]bool
	out   []Bicluster
	nodes int
	stop  bool
}

func (e *engine) grow(conds []int, genes []int) {
	if e.stop {
		return
	}
	e.nodes++
	if e.p.MaxNodes > 0 && e.nodes > e.p.MaxNodes {
		e.stop = true
		return
	}
	if len(genes) < e.p.MinG {
		return
	}
	if len(conds) >= e.p.MinC {
		b := Bicluster{Genes: append([]int(nil), genes...), Conds: append([]int(nil), conds...)}
		sort.Ints(b.Genes)
		key := b.Key()
		if e.seen[key] {
			return
		}
		e.seen[key] = true
		e.out = append(e.out, b)
	}
	last := conds[len(conds)-1]
	for c := last + 1; c < e.m.Cols(); c++ {
		// Remaining conditions must still allow reaching MinC.
		if len(conds)+1+(e.m.Cols()-c-1) < e.p.MinC {
			break
		}
		for _, sub := range e.refine(conds, genes, c) {
			e.grow(append(append([]int(nil), conds...), c), sub)
		}
	}
}

// refine returns the maximal gene subsets of genes that keep every new pair
// (a, c), a in conds, within a fitting window. Each pair may split the set
// into several maximal windows; refinement explores their cross product
// depth-first, deduplicating identical survivor sets.
func (e *engine) refine(conds []int, genes []int, c int) [][]int {
	sets := [][]int{genes}
	for _, a := range conds {
		var next [][]int
		for _, set := range sets {
			next = append(next, e.windowsForPair(set, a, c)...)
		}
		if len(next) == 0 {
			return nil
		}
		sets = dedupSets(next)
	}
	return sets
}

// windowsForPair sorts the genes by score(g, a, c) and returns the maximal
// windows of size >= MinG whose [lo, hi] fits.
func (e *engine) windowsForPair(genes []int, a, c int) [][]int {
	type gs struct {
		gene int
		s    float64
	}
	scored := make([]gs, len(genes))
	for i, g := range genes {
		scored[i] = gs{g, e.score(e.m, g, a, c)}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].s != scored[j].s {
			return scored[i].s < scored[j].s
		}
		return scored[i].gene < scored[j].gene
	})
	var out [][]int
	r, prevR := 0, -1
	for l := 0; l < len(scored); l++ {
		if r < l {
			r = l
		}
		for r+1 < len(scored) && e.fit(scored[l].s, scored[r+1].s) {
			r++
		}
		if r-l+1 >= e.p.MinG && r > prevR && e.fit(scored[l].s, scored[r].s) {
			w := make([]int, 0, r-l+1)
			for k := l; k <= r; k++ {
				w = append(w, scored[k].gene)
			}
			out = append(out, w)
			prevR = r
		}
	}
	return out
}

func dedupSets(sets [][]int) [][]int {
	seen := map[string]bool{}
	var out [][]int
	for _, s := range sets {
		sorted := append([]int(nil), s...)
		sort.Ints(sorted)
		var sb strings.Builder
		for _, g := range sorted {
			sb.WriteString(strconv.Itoa(g))
			sb.WriteByte(',')
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, sorted)
		}
	}
	return out
}
