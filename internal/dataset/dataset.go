// Package dataset provides the gene expression datasets of the paper's
// effectiveness study (Section 5.2).
//
// The paper evaluates on the Tavazoie/Church benchmark of 2884 yeast genes
// under 17 conditions (http://arep.med.harvard.edu/biclustering/). That file
// cannot be fetched in this offline reproduction, so GenerateYeastLike builds
// a deterministic substitute with the same shape, a comparable value range,
// and realistic per-gene structure: most genes sit in a tight baseline band
// with a handful of spike responses (so, as in the real data, only a
// minority of genes can sustain a long regulation chain at γ=0.05), plus a
// configurable number of planted co-regulated modules with positive and
// negative members. LoadTSV accepts the real file when it is available; both
// paths feed the identical mining code.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"regcluster/internal/matrix"
)

// YeastGenes and YeastConds are the dimensions of the Tavazoie benchmark.
const (
	YeastGenes = 2884
	YeastConds = 17
)

// Module is the ground truth of one planted co-regulated gene module.
type Module struct {
	// Chain lists the module's condition indices in increasing order of the
	// base profile — the representative regulation chain to rediscover.
	Chain []int
	// PMembers rise along Chain; NMembers fall. Both ascending.
	PMembers, NMembers []int
}

// Genes returns all member genes, ascending.
func (mod *Module) Genes() []int {
	out := make([]int, 0, len(mod.PMembers)+len(mod.NMembers))
	out = append(out, mod.PMembers...)
	out = append(out, mod.NMembers...)
	sort.Ints(out)
	return out
}

// YeastConfig parameterizes the substitute generator.
type YeastConfig struct {
	Genes, Conds int
	// Modules is the number of planted co-regulated modules.
	Modules int
	// MinModuleGenes/MaxModuleGenes bound the module sizes (paper-scale
	// default 15–80).
	MinModuleGenes, MaxModuleGenes int
	// MinModuleConds/MaxModuleConds bound the subspace widths (default 6–9).
	MinModuleConds, MaxModuleConds int
	// SpikeRate is the per-cell probability that a background gene leaves
	// its baseline band (default 0.22 — keeps most background chains under
	// the MinC=6 of Section 5.2).
	SpikeRate float64
	// GammaEmbed is the regulation threshold every planted module satisfies
	// with margin (default 0.10, double the Section 5.2 mining γ=0.05).
	GammaEmbed float64
	Seed       int64
}

// DefaultYeastConfig returns the substitution described in DESIGN.md §4.
func DefaultYeastConfig() YeastConfig {
	return YeastConfig{
		Genes: YeastGenes, Conds: YeastConds,
		Modules:        12,
		MinModuleGenes: 18, MaxModuleGenes: 32,
		MinModuleConds: 6, MaxModuleConds: 8,
		SpikeRate:  0.18,
		GammaEmbed: 0.10,
		Seed:       2006,
	}
}

func (c *YeastConfig) fillDefaults() {
	d := DefaultYeastConfig()
	if c.MinModuleGenes == 0 {
		c.MinModuleGenes = d.MinModuleGenes
	}
	if c.MaxModuleGenes == 0 {
		c.MaxModuleGenes = d.MaxModuleGenes
	}
	if c.MinModuleConds == 0 {
		c.MinModuleConds = d.MinModuleConds
	}
	if c.MaxModuleConds == 0 {
		c.MaxModuleConds = d.MaxModuleConds
	}
	if c.SpikeRate == 0 {
		c.SpikeRate = d.SpikeRate
	}
	if c.GammaEmbed == 0 {
		c.GammaEmbed = d.GammaEmbed
	}
}

func (c YeastConfig) validate() error {
	if c.Genes <= 0 || c.Conds < 2 || c.Modules < 0 {
		return fmt.Errorf("dataset: invalid dimensions in %+v", c)
	}
	if c.MinModuleGenes < 2 || c.MaxModuleGenes < c.MinModuleGenes {
		return fmt.Errorf("dataset: bad module gene bounds %d..%d", c.MinModuleGenes, c.MaxModuleGenes)
	}
	if c.MinModuleConds < 2 || c.MaxModuleConds < c.MinModuleConds || c.MaxModuleConds > c.Conds {
		return fmt.Errorf("dataset: bad module cond bounds %d..%d (conds %d)", c.MinModuleConds, c.MaxModuleConds, c.Conds)
	}
	if c.SpikeRate < 0 || c.SpikeRate > 1 {
		return fmt.Errorf("dataset: SpikeRate %v out of [0,1]", c.SpikeRate)
	}
	if c.GammaEmbed <= 0 || c.GammaEmbed >= 0.5 {
		return fmt.Errorf("dataset: GammaEmbed %v out of (0,0.5)", c.GammaEmbed)
	}
	return nil
}

// GenerateYeastLike builds the substitute matrix. It returns the matrix
// (gene names in yeast ORF style, condition names per the Tavazoie
// time-course labels) and the planted module ground truth used by the GO
// enrichment substrate.
func GenerateYeastLike(cfg YeastConfig) (*matrix.Matrix, []Module, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := matrix.New(cfg.Genes, cfg.Conds)

	// Background: every gene holds a tight baseline band plus occasional
	// spikes. The band is narrower than GammaEmbed times the gene's value
	// spread, so within-band moves are never regulations at the Section 5.2
	// threshold and background regulation chains stay short.
	for g := 0; g < cfg.Genes; g++ {
		base := 40 + rng.Float64()*260        // baseline level
		spread := 150 + rng.Float64()*350     // distance to the largest spike
		band := cfg.GammaEmbed * 0.4 * spread // within-band jitter
		row := m.Row(g)
		for c := range row {
			if rng.Float64() < cfg.SpikeRate {
				row[c] = base + rng.Float64()*spread
			} else {
				row[c] = base + rng.Float64()*band
			}
		}
	}

	// Plant modules on disjoint gene sets.
	pool := rng.Perm(cfg.Genes)
	poolAt := 0
	var modules []Module
	for k := 0; k < cfg.Modules; k++ {
		size := cfg.MinModuleGenes + rng.Intn(cfg.MaxModuleGenes-cfg.MinModuleGenes+1)
		width := cfg.MinModuleConds + rng.Intn(cfg.MaxModuleConds-cfg.MinModuleConds+1)
		if poolAt+size > len(pool) {
			break // gene pool exhausted; plant fewer modules
		}
		genes := pool[poolAt : poolAt+size]
		poolAt += size
		chain := rng.Perm(cfg.Conds)[:width]
		nNeg := size / 4
		if 2*nNeg >= size {
			nNeg = (size - 1) / 2
		}

		// Step fractions with every fraction at least 5% above GammaEmbed.
		fractions := stepFractions(rng, width-1, cfg.GammaEmbed*1.05)
		if fractions == nil {
			return nil, nil, fmt.Errorf("dataset: width %d incompatible with GammaEmbed %v", width, cfg.GammaEmbed)
		}

		mod := Module{Chain: append([]int(nil), chain...)}
		inChain := make(map[int]bool, width)
		for _, c := range chain {
			inChain[c] = true
		}
		for gi, g := range genes {
			neg := gi < nNeg
			// The member's planted values must span beyond its remaining
			// background cells so that the gene's full-row range equals the
			// planted span and every chain step clears γ_i by construction.
			bgLo, bgHi := rowBoundsExcluding(m, g, inChain)
			span := (bgHi - bgLo) * (1.3 + 0.7*rng.Float64())
			lo := bgLo - (span-(bgHi-bgLo))*rng.Float64()
			cum := 0.0
			for s, c := range chain {
				if s > 0 {
					cum += fractions[s-1]
				}
				v := lo + cum*span
				if neg {
					v = lo + (1-cum)*span
				}
				m.Set(g, c, v)
			}
			if neg {
				mod.NMembers = append(mod.NMembers, g)
			} else {
				mod.PMembers = append(mod.PMembers, g)
			}
		}
		sort.Ints(mod.PMembers)
		sort.Ints(mod.NMembers)
		modules = append(modules, mod)
	}

	for g := 0; g < m.Rows(); g++ {
		m.SetRowName(g, orfName(g))
	}
	for c := 0; c < m.Cols(); c++ {
		m.SetColName(c, yeastCondName(c))
	}
	return m, modules, nil
}

// rowBoundsExcluding returns the min and max of gene g's cells outside the
// given condition set.
func rowBoundsExcluding(m *matrix.Matrix, g int, exclude map[int]bool) (lo, hi float64) {
	first := true
	row := m.Row(g)
	for c, v := range row {
		if exclude[c] {
			continue
		}
		if first {
			lo, hi = v, v
			first = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if first { // module covers every condition
		return 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	return lo, hi
}

// stepFractions returns n positive fractions summing to 1 whose minimum
// exceeds gammaT, or nil when n*gammaT >= 1 makes that impossible.
func stepFractions(rng *rand.Rand, n int, gammaT float64) []float64 {
	if n <= 0 || float64(n)*gammaT >= 0.999 {
		return nil
	}
	vMax := 1/(float64(n)*gammaT) - 1
	v := vMax * 0.8
	if v > 1 {
		v = 1
	}
	raw := make([]float64, n)
	sum := 0.0
	for i := range raw {
		raw[i] = 1 + rng.Float64()*v
		sum += raw[i]
	}
	for i := range raw {
		raw[i] /= sum
	}
	return raw
}

// LoadTSV loads a real expression file (for example the Tavazoie benchmark)
// and fills missing values so the miners can run on it.
func LoadTSV(path string) (*matrix.Matrix, error) {
	m, err := matrix.ReadTSVFile(path)
	if err != nil {
		return nil, err
	}
	m.FillNaN()
	return m, nil
}

// orfName produces systematic yeast ORF-style names (YAL001C, YAL002W, ...)
// cycling through chromosomes and arms.
func orfName(i int) string {
	chrom := rune('A' + (i/200)%16)
	arm := "L"
	if (i/100)%2 == 1 {
		arm = "R"
	}
	strand := "W"
	if i%2 == 1 {
		strand = "C"
	}
	return fmt.Sprintf("Y%c%s%03d%s", chrom, arm, i%1000, strand)
}

// yeastCondName labels the 17 Tavazoie conditions: two cell-cycle
// time-courses (cdc15 and alpha-factor arrest) as in the benchmark.
func yeastCondName(c int) string {
	if c < 8 {
		return fmt.Sprintf("cdc15_t%d", c*10)
	}
	return fmt.Sprintf("alpha_t%d", (c-8)*7)
}
