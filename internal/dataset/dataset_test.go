package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"regcluster/internal/core"
	"regcluster/internal/matrix"
)

func TestGenerateYeastLikeShape(t *testing.T) {
	m, modules, err := GenerateYeastLike(DefaultYeastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != YeastGenes || m.Cols() != YeastConds {
		t.Fatalf("shape %dx%d, want %dx%d", m.Rows(), m.Cols(), YeastGenes, YeastConds)
	}
	if len(modules) != 12 {
		t.Fatalf("%d modules, want 12", len(modules))
	}
	if m.RowName(0) == "g0" {
		t.Error("gene names should be ORF-style")
	}
	if m.ColName(0) != "cdc15_t0" {
		t.Errorf("condition name %q", m.ColName(0))
	}
}

func TestGenerateYeastLikeDeterministic(t *testing.T) {
	a, _, err := GenerateYeastLike(DefaultYeastConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := GenerateYeastLike(DefaultYeastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same config must reproduce the same matrix")
	}
}

func TestPlantedModulesRemainValid(t *testing.T) {
	// The noise pass must not damage the planted modules: every module must
	// still satisfy Definition 3.2 at the embedding threshold.
	m, modules, err := GenerateYeastLike(YeastConfig{Genes: 400, Conds: 17, Modules: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{MinG: 2, MinC: 2, Gamma: 0.05, Epsilon: 1e-9}
	for k, mod := range modules {
		b := &core.Bicluster{Chain: mod.Chain, PMembers: mod.PMembers, NMembers: mod.NMembers}
		if err := core.CheckBicluster(m, p, b); err != nil {
			t.Errorf("module %d invalid after noise: %v", k, err)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	for _, cfg := range []YeastConfig{{Genes: 0, Conds: 17}, {Genes: 10, Conds: 1}, {Genes: 10, Conds: 10, Modules: -1}} {
		if _, _, err := GenerateYeastLike(cfg); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}

func TestLoadTSVFillsMissing(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	path := filepath.Join(t.TempDir(), "expr.tsv")
	if err := m.WriteTSVFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip mismatch")
	}
	// A file with NA cells loads without NaN.
	raw := "gene\ta\tb\ng1\t1\tNA\ng2\t2\t3\n"
	path2 := filepath.Join(t.TempDir(), "na.tsv")
	if err := writeFile(path2, raw); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadTSV(path2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.HasNaN() {
		t.Fatal("LoadTSV must fill missing values")
	}
}

func TestOrfNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < YeastGenes; i++ {
		n := orfName(i)
		if seen[n] {
			t.Fatalf("duplicate ORF name %q at %d", n, i)
		}
		seen[n] = true
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
