module regcluster

go 1.22
