#!/usr/bin/env bash
# Record a machine-readable benchmark baseline (BENCH_<n>.json).
#
# Usage:
#   scripts/bench_baseline.sh OUT.json [SPEC ...]
#
# Each SPEC is "<-bench regex>@<-benchtime>"; the default set covers the
# E1-E8 evaluation benchmarks of bench_test.go at iteration counts that keep
# the whole recording under a few minutes. One `go test` run per spec, all
# outputs concatenated and parsed by cmd/benchdiff into ns/op, B/op and
# allocs/op per benchmark.
#
# BEST_OF=N (default 1) repeats every benchmark N times (go test -count N)
# and records the fastest sample of each — min-of-N is far less noisy on a
# shared machine than a single run.
#
#   scripts/bench_baseline.sh BENCH_0.json                      # default set
#   BEST_OF=3 scripts/bench_baseline.sh BENCH_0.json            # min-of-3
#   scripts/bench_baseline.sh /tmp/b.json 'BenchmarkYeast$@5x'  # custom set
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
BEST_OF=${BEST_OF:-1}
OUT=${1:?usage: bench_baseline.sh OUT.json [bench-regex@benchtime ...]}
shift || true

SPECS=("$@")
if [ ${#SPECS[@]} -eq 0 ]; then
    SPECS=(
        'BenchmarkFig7Genes$@3x'        # E1: runtime vs #genes
        'BenchmarkFig7Conds$@3x'        # E2: runtime vs #conditions
        'BenchmarkFig7Clusters$@3x'     # E3: runtime vs #embedded clusters
        'BenchmarkYeast$@3x'            # E4: yeast-substitute effectiveness run
        'BenchmarkTable2TermFinder$@20x' # E5: GO term finder
        'BenchmarkRunningExample$@100x' # E6: Table 1 walk-through
        'BenchmarkPruningAblation$@1x'  # E8: pruning ablation
        'BenchmarkRWaveBuild$@5x'       # index construction phase
        'BenchmarkSweepSharedModel$@3x' # ε-sweep with/without the shared model set
        'BenchmarkOverlapStats$@5x'     # Section 5.2 overlap statistic
    )
fi

LABEL=$(basename "$OUT" .json)
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

for spec in "${SPECS[@]}"; do
    regex=${spec%@*}
    benchtime=${spec##*@}
    echo ">> go test -bench '$regex' -benchtime $benchtime -count $BEST_OF" >&2
    $GO test -run 'XXX_none' -bench "$regex" -benchtime "$benchtime" -count "$BEST_OF" -benchmem -timeout 30m . \
        | tee -a "$RAW" >&2
done

$GO run ./cmd/benchdiff -parse -label "$LABEL" -best-of "$BEST_OF" <"$RAW" >"$OUT"
echo "wrote $OUT" >&2
