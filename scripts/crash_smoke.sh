#!/usr/bin/env bash
# Crash-recovery smoke test of the durable mining service: boot regserver on
# a data-dir, SIGKILL it mid-job, restart it on the same data-dir, and assert
# that the job resumes from its journaled checkpoint and finishes with a
# result byte-identical to an uninterrupted run's.
set -euo pipefail

script_dir=$(cd "$(dirname "$0")" && pwd)
cd "$script_dir/.."
SMOKE_NAME=crash-smoke
# shellcheck source=scripts/lib.sh
. "$script_dir/lib.sh"
smoke_init

build_tools regserver datagen
# A workload slow enough that SIGKILL reliably lands mid-run (tens of
# thousands of clusters, a few seconds of mining plus journal fsyncs).
"$workdir/datagen" -kind synthetic -genes 260 -conds 13 -clusters 10 -seed 7 \
    -out "$workdir/matrix.tsv"
params='{"MinG":3,"MinC":3,"Gamma":0.05,"Epsilon":1.5}'

# --- Phase 1: the uninterrupted reference run -------------------------------
start_server "$workdir/ref.log" -jobs 1 -workers 1 -data-dir "$workdir/refdir"
dataset=$(upload "$workdir/matrix.tsv" crash)
[[ -n "$dataset" ]] || fail "upload returned no dataset ID"
job=$(submit "$dataset" "$params")
[[ -n "$job" ]] || fail "reference submission returned no job ID"
wait_done "$job" 600
curl -sf "$base/jobs/$job/result" >"$workdir/reference.json"
stop_server
note "reference run done ($(wc -c <"$workdir/reference.json") bytes)"

# --- Phase 2: the crashed run -----------------------------------------------
start_server "$workdir/crash.log" -jobs 1 -workers 1 -data-dir "$workdir/datadir"
dataset=$(upload "$workdir/matrix.tsv" crash)
job=$(submit "$dataset" "$params")
[[ -n "$job" ]] || fail "crash-run submission returned no job ID"
clusters=0
for _ in $(seq 1 600); do
    clusters=$(job_field "$job" clusters)
    status=$(job_field "$job" status)
    [[ "$status" == done ]] && fail "workload finished before the kill; make it slower"
    [[ "${clusters:-0}" -ge 500 ]] && break
    sleep 0.05
done
[[ "${clusters:-0}" -ge 500 ]] || fail "job never reached 500 clusters (at '$clusters')"
kill_server
note "SIGKILL at $clusters clusters"

# --- Phase 3: restart, resume, compare --------------------------------------
start_server "$workdir/recover.log" -jobs 1 -workers 1 -data-dir "$workdir/datadir"
recovered=$(job_field "$job" recovered)
[[ "$recovered" == true ]] || fail "job not marked recovered after restart"
curl -sf "$base/metrics" | grep -q '^regserver_recoveries_total 1$' \
    || fail "recoveries_total metric missing"
wait_done "$job" 600
curl -sf "$base/jobs/$job/result" >"$workdir/recovered.json"
cmp -s "$workdir/reference.json" "$workdir/recovered.json" \
    || fail "recovered result differs from the uninterrupted run"
stop_server
note "recovered result byte-identical to the reference run"
note "OK"
