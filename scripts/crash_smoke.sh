#!/usr/bin/env bash
# Crash-recovery smoke test of the durable mining service: boot regserver on
# a data-dir, SIGKILL it mid-job, restart it on the same data-dir, and assert
# that the job resumes from its journaled checkpoint and finishes with a
# result byte-identical to an uninterrupted run's.
set -euo pipefail

GO=${GO:-go}
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "crash-smoke: FAIL: $*" >&2; exit 1; }

$GO build -o "$workdir/regserver" ./cmd/regserver
$GO build -o "$workdir/datagen" ./cmd/datagen
# A workload slow enough that SIGKILL reliably lands mid-run (tens of
# thousands of clusters, a few seconds of mining plus journal fsyncs).
"$workdir/datagen" -kind synthetic -genes 260 -conds 13 -clusters 10 -seed 7 \
    -out "$workdir/matrix.tsv"
params='{"MinG":3,"MinC":3,"Gamma":0.05,"Epsilon":1.5}'

# start_server <data-dir> <log>: boots regserver and sets $server_pid/$base.
start_server() {
    "$workdir/regserver" -addr 127.0.0.1:0 -jobs 1 -workers 1 \
        -data-dir "$1" >"$2" 2>&1 &
    server_pid=$!
    base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's/^regserver: listening on \(http:\/\/.*\)$/\1/p' "$2")
        [[ -n "$base" ]] && break
        kill -0 "$server_pid" 2>/dev/null || fail "server died: $(cat "$2")"
        sleep 0.1
    done
    [[ -n "$base" ]] || fail "server never announced its address"
}

stop_server() { # graceful
    kill -TERM "$server_pid"
    wait "$server_pid" || fail "server exited non-zero after SIGTERM"
    server_pid=""
}

upload() {
    curl -sf -X POST --data-binary @"$workdir/matrix.tsv" \
        "$base/datasets?name=crash" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'
}

submit() {
    curl -sf -X POST -H 'Content-Type: application/json' \
        -d '{"dataset":"'"$1"'","params":'"$params"'}' "$base/jobs" \
        | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'
}

job_field() { # job_field <job-id> <field>: numeric or quoted-string field
    curl -sf "$base/jobs/$1" \
        | sed -n 's/.*"'"$2"'": *"\{0,1\}\([a-zA-Z0-9_-]*\)"\{0,1\}[,}].*/\1/p' | head -1
}

wait_done() { # wait_done <job-id> <tries>
    local status=""
    for _ in $(seq 1 "$2"); do
        status=$(job_field "$1" status)
        case "$status" in
            done) return 0 ;;
            failed|cancelled|interrupted) fail "job $1 ended $status" ;;
        esac
        sleep 0.2
    done
    fail "job $1 stuck in '$status'"
}

# --- Phase 1: the uninterrupted reference run -------------------------------
start_server "$workdir/refdir" "$workdir/ref.log"
dataset=$(upload)
[[ -n "$dataset" ]] || fail "upload returned no dataset ID"
job=$(submit "$dataset")
[[ -n "$job" ]] || fail "reference submission returned no job ID"
wait_done "$job" 600
curl -sf "$base/jobs/$job/result" >"$workdir/reference.json"
stop_server
echo "crash-smoke: reference run done ($(wc -c <"$workdir/reference.json") bytes)"

# --- Phase 2: the crashed run -----------------------------------------------
start_server "$workdir/datadir" "$workdir/crash.log"
dataset=$(upload)
job=$(submit "$dataset")
[[ -n "$job" ]] || fail "crash-run submission returned no job ID"
clusters=0
for _ in $(seq 1 600); do
    clusters=$(job_field "$job" clusters)
    status=$(job_field "$job" status)
    [[ "$status" == done ]] && fail "workload finished before the kill; make it slower"
    [[ "${clusters:-0}" -ge 500 ]] && break
    sleep 0.05
done
[[ "${clusters:-0}" -ge 500 ]] || fail "job never reached 500 clusters (at '$clusters')"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "crash-smoke: SIGKILL at $clusters clusters"

# --- Phase 3: restart, resume, compare --------------------------------------
start_server "$workdir/datadir" "$workdir/recover.log"
recovered=$(job_field "$job" recovered)
[[ "$recovered" == true ]] || fail "job not marked recovered after restart"
curl -sf "$base/metrics" | grep -q '^regserver_recoveries_total 1$' \
    || fail "recoveries_total metric missing"
wait_done "$job" 600
curl -sf "$base/jobs/$job/result" >"$workdir/recovered.json"
cmp -s "$workdir/reference.json" "$workdir/recovered.json" \
    || fail "recovered result differs from the uninterrupted run"
stop_server
echo "crash-smoke: recovered result byte-identical to the reference run"
echo "crash-smoke: OK"
