#!/usr/bin/env bash
# Incremental-mining smoke test: upload a small handcrafted matrix, mine it,
# append a one-condition delta, and re-mine the grown dataset. The second mine
# must take the incremental path (repairing the cached RWave models and
# re-mining only the dirty subtrees), its result must be byte-identical to a
# cold mine of the same grown matrix on a fresh server, and the diff endpoint
# must describe the change under the regcluster.diff/v1 schema.
set -euo pipefail

script_dir=$(cd "$(dirname "$0")" && pwd)
cd "$script_dir/.."
SMOKE_NAME=incr-smoke
# shellcheck source=scripts/lib.sh
. "$script_dir/lib.sh"
smoke_init

build_tools regserver

# A 3x4 parent with per-gene profile shape (0, 2, 3, 0) and a one-condition
# delta at 0.9/0.9/1.4. Under gamma=2 with strict regulation (diff > gamma,
# never >=), the appended condition reaches exactly c2 (|0.9-3| = 2.1 > 2),
# so the dirty set is {c2, c4}: 3 parent subtrees splice, 2 mine fresh.
{
    printf 'gene\tc0\tc1\tc2\tc3\n'
    printf 'g0\t0\t2\t3\t0\n'
    printf 'g1\t0\t2\t3\t0\n'
    printf 'g2\t0.5\t2.5\t3.5\t0.5\n'
} >"$workdir/parent.tsv"
{
    printf 'gene\tc4\n'
    printf 'g0\t0.9\n'
    printf 'g1\t0.9\n'
    printf 'g2\t1.4\n'
} >"$workdir/delta.tsv"
params='{"MinG":2,"MinC":2,"Gamma":2,"AbsoluteGamma":true,"Epsilon":1}'

# --- Phase 1: mine the parent, append the delta, re-mine incrementally ------
start_server "$workdir/server.log" -jobs 1
parent=$(upload "$workdir/parent.tsv" incr)
[[ -n "$parent" ]] || fail "upload returned no dataset ID"
pjob=$(submit "$parent" "$params")
[[ -n "$pjob" ]] || fail "parent submission returned no job ID"
wait_done "$pjob" 300
note "parent $pjob done"

reply=$(curl -sf -X POST --data-binary @"$workdir/delta.tsv" \
    "$base/datasets/$parent/append")
child=$(printf '%s' "$reply" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
[[ -n "$child" && "$child" != "$parent" ]] || fail "append returned no child ID: $reply"
printf '%s' "$reply" | grep -q '"parent": *"'"$parent"'"' \
    || fail "append reply lacks parent lineage: $reply"
[[ "$(metric regserver_dataset_appends_total)" == 1 ]] \
    || fail "dataset_appends metric after append"
note "appended delta: child $child"

cjob=$(submit "$child" "$params")
[[ -n "$cjob" ]] || fail "child submission returned no job ID"
wait_done "$cjob" 300
cview=$(curl -sf "$base/jobs/$cjob")
echo "$cview" | grep -q '"incremental": *true' \
    || fail "child job did not take the incremental path: $cview"
echo "$cview" | grep -q '"subtrees_reused": *3' || fail "subtrees_reused: $cview"
echo "$cview" | grep -q '"subtrees_mined": *2' || fail "subtrees_mined: $cview"
note "incremental re-mine done (reused 3, mined 2)"

metrics=$(curl -sf "$base/metrics")
for want in \
    'regserver_incremental_mines_total 1' \
    'regserver_incremental_fallbacks_total 0' \
    'regserver_incremental_subtrees_reused_total 3' \
    'regserver_incremental_subtrees_mined_total 2' \
    'regserver_model_repairs_total 3'; do
    echo "$metrics" | grep -q "^$want$" \
        || fail "metric '$want': $(echo "$metrics" | grep -E 'incremental|repairs')"
done

diff_doc=$(curl -sf "$base/datasets/$child/diff/$parent")
echo "$diff_doc" | grep -q '"schema": *"regcluster.diff/v1"' \
    || fail "diff schema: $diff_doc"
echo "$diff_doc" | grep -q '"parent": *"'"$parent"'"' || fail "diff parent: $diff_doc"
note "diff served under regcluster.diff/v1"

curl -sf "$base/jobs/$cjob/result" >"$workdir/incremental.json"
curl -sf "$base/datasets/$child/tsv" >"$workdir/grown.tsv"
stop_server

# --- Phase 2: cold-mine the grown matrix on a fresh server and compare ------
start_server "$workdir/cold.log" -jobs 1
grown=$(upload "$workdir/grown.tsv" incr-cold)
[[ "$grown" == "$child" ]] \
    || fail "grown matrix hashed to $grown, want the appended child $child"
gjob=$(submit "$grown" "$params")
[[ -n "$gjob" ]] || fail "cold submission returned no job ID"
wait_done "$gjob" 300
curl -sf "$base/jobs/$gjob/result" >"$workdir/cold.json"
[[ "$(metric regserver_incremental_mines_total)" == 0 ]] \
    || fail "cold server took the incremental path"
stop_server

cmp -s "$workdir/incremental.json" "$workdir/cold.json" \
    || fail "incremental result differs from the cold mine"
note "incremental result byte-identical to the cold mine"
note "OK"
