#!/usr/bin/env bash
# Distributed-mining smoke test: mine one job on a coordinator with two
# worker processes (the coordinator itself runs no mining loops), SIGKILL one
# worker mid-run, and assert that the coordinator re-leases the orphaned
# subtrees and the final result is byte-identical to a single-node run's.
set -euo pipefail

GO=${GO:-go}
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
worker1_pid=""
worker2_pid=""
cleanup() {
    for pid in "$worker1_pid" "$worker2_pid" "$server_pid"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "dist-smoke: FAIL: $*" >&2; exit 1; }

$GO build -o "$workdir/regserver" ./cmd/regserver
$GO build -o "$workdir/datagen" ./cmd/datagen
# A workload with enough subtrees (= conditions) and enough mining per
# subtree that the kill reliably lands while leases are outstanding.
"$workdir/datagen" -kind synthetic -genes 260 -conds 13 -clusters 10 -seed 7 \
    -out "$workdir/matrix.tsv"
params='{"MinG":3,"MinC":3,"Gamma":0.05,"Epsilon":1.5}'

# start_server <log> <extra flags...>: boots regserver, sets $server_pid/$base.
start_server() {
    local log=$1
    shift
    "$workdir/regserver" -addr 127.0.0.1:0 -jobs 1 "$@" >"$log" 2>&1 &
    server_pid=$!
    base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's/^regserver: listening on \(http:\/\/[^ ]*\).*$/\1/p' "$log")
        [[ -n "$base" ]] && break
        kill -0 "$server_pid" 2>/dev/null || fail "server died: $(cat "$log")"
        sleep 0.1
    done
    [[ -n "$base" ]] || fail "server never announced its address"
}

stop_server() { # graceful
    kill -TERM "$server_pid"
    wait "$server_pid" || fail "server exited non-zero after SIGTERM"
    server_pid=""
}

start_worker() { # start_worker <name> <log>: sets $worker_pid
    "$workdir/regserver" -addr 127.0.0.1:0 -mode worker -join "$base" \
        -advertise "$1" >"$2" 2>&1 &
    worker_pid=$!
}

upload() {
    curl -sf -X POST --data-binary @"$workdir/matrix.tsv" \
        "$base/datasets?name=dist" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'
}

submit() {
    curl -sf -X POST -H 'Content-Type: application/json' \
        -d '{"dataset":"'"$1"'","params":'"$params"'}' "$base/jobs" \
        | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'
}

job_field() { # job_field <job-id> <field>: numeric or quoted-string field
    curl -sf "$base/jobs/$1" \
        | sed -n 's/.*"'"$2"'": *"\{0,1\}\([a-zA-Z0-9_-]*\)"\{0,1\}[,}].*/\1/p' | head -1
}

metric() { # metric <name>: current value, 0 when absent
    curl -sf "$base/metrics" | sed -n "s/^$1 \([0-9]*\)$/\1/p" | head -1
}

wait_done() { # wait_done <job-id> <tries>
    local status=""
    for _ in $(seq 1 "$2"); do
        status=$(job_field "$1" status)
        case "$status" in
            done) return 0 ;;
            failed|cancelled|interrupted) fail "job $1 ended $status" ;;
        esac
        sleep 0.2
    done
    fail "job $1 stuck in '$status'"
}

# --- Phase 1: the single-node reference run ---------------------------------
start_server "$workdir/ref.log" -workers 1
dataset=$(upload)
[[ -n "$dataset" ]] || fail "upload returned no dataset ID"
job=$(submit "$dataset")
[[ -n "$job" ]] || fail "reference submission returned no job ID"
wait_done "$job" 600
curl -sf "$base/jobs/$job/result" >"$workdir/reference.json"
stop_server
echo "dist-smoke: single-node reference done ($(wc -c <"$workdir/reference.json") bytes)"

# --- Phase 2: coordinator + two workers, one killed mid-run -----------------
start_server "$workdir/coord.log" -mode coordinator -local-workers 0 -lease-ttl 2s
start_worker w1 "$workdir/w1.log"
worker1_pid=$worker_pid
start_worker w2 "$workdir/w2.log"
worker2_pid=$worker_pid
dataset=$(upload)
job=$(submit "$dataset")
[[ -n "$job" ]] || fail "distributed submission returned no job ID"

# Let a few subtrees complete so the run is demonstrably distributed, then
# SIGKILL one worker while the rest are still leased out.
completed=0
for _ in $(seq 1 600); do
    completed=$(metric regserver_leases_completed_total)
    [[ "$(job_field "$job" status)" == done ]] \
        && fail "workload finished before the kill; make it slower"
    [[ "${completed:-0}" -ge 3 ]] && break
    sleep 0.05
done
[[ "${completed:-0}" -ge 3 ]] || fail "no leases completed (at '$completed')"
kill -9 "$worker1_pid"
wait "$worker1_pid" 2>/dev/null || true
worker1_pid=""
echo "dist-smoke: SIGKILL worker w1 at $completed completed leases"

wait_done "$job" 600
reassigned=$(metric regserver_leases_reassigned_total)
[[ "${reassigned:-0}" -ge 1 ]] \
    || fail "no lease reassignment after killing a worker (got '$reassigned')"
curl -sf "$base/jobs/$job/result" >"$workdir/distributed.json"
cmp -s "$workdir/reference.json" "$workdir/distributed.json" \
    || fail "distributed result differs from the single-node run"
echo "dist-smoke: result byte-identical after $reassigned lease reassignment(s)"

kill -TERM "$worker2_pid" && wait "$worker2_pid" \
    || fail "surviving worker exited non-zero after SIGTERM"
worker2_pid=""
stop_server
echo "dist-smoke: OK"
