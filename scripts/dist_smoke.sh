#!/usr/bin/env bash
# Distributed-mining smoke test: mine one job on a coordinator with two
# worker processes (the coordinator itself runs no mining loops), SIGKILL one
# worker mid-run, and assert that the coordinator re-leases the orphaned
# subtrees and the final result is byte-identical to a single-node run's.
set -euo pipefail

script_dir=$(cd "$(dirname "$0")" && pwd)
cd "$script_dir/.."
SMOKE_NAME=dist-smoke
# shellcheck source=scripts/lib.sh
. "$script_dir/lib.sh"
smoke_init

build_tools regserver datagen
# A workload with enough subtrees (= conditions) and enough mining per
# subtree that the kill reliably lands while leases are outstanding.
"$workdir/datagen" -kind synthetic -genes 260 -conds 13 -clusters 10 -seed 7 \
    -out "$workdir/matrix.tsv"
params='{"MinG":3,"MinC":3,"Gamma":0.05,"Epsilon":1.5}'

start_worker() { # start_worker <name> <log>: sets $worker_pid
    "$workdir/regserver" -addr 127.0.0.1:0 -mode worker -join "$base" \
        -advertise "$1" >"$2" 2>&1 &
    worker_pid=$!
    extra_pids+=("$worker_pid")
}

# --- Phase 1: the single-node reference run ---------------------------------
start_server "$workdir/ref.log" -jobs 1 -workers 1
dataset=$(upload "$workdir/matrix.tsv" dist)
[[ -n "$dataset" ]] || fail "upload returned no dataset ID"
job=$(submit "$dataset" "$params")
[[ -n "$job" ]] || fail "reference submission returned no job ID"
wait_done "$job" 600
curl -sf "$base/jobs/$job/result" >"$workdir/reference.json"
stop_server
note "single-node reference done ($(wc -c <"$workdir/reference.json") bytes)"

# --- Phase 2: coordinator + two workers, one killed mid-run -----------------
start_server "$workdir/coord.log" -jobs 1 -mode coordinator -local-workers 0 -lease-ttl 2s
start_worker w1 "$workdir/w1.log"
worker1_pid=$worker_pid
start_worker w2 "$workdir/w2.log"
worker2_pid=$worker_pid
dataset=$(upload "$workdir/matrix.tsv" dist)
job=$(submit "$dataset" "$params")
[[ -n "$job" ]] || fail "distributed submission returned no job ID"

# Let a few subtrees complete so the run is demonstrably distributed, then
# SIGKILL one worker while the rest are still leased out.
completed=0
for _ in $(seq 1 600); do
    completed=$(metric regserver_leases_completed_total)
    [[ "$(job_field "$job" status)" == done ]] \
        && fail "workload finished before the kill; make it slower"
    [[ "${completed:-0}" -ge 3 ]] && break
    sleep 0.05
done
[[ "${completed:-0}" -ge 3 ]] || fail "no leases completed (at '$completed')"
kill -9 "$worker1_pid"
wait "$worker1_pid" 2>/dev/null || true
worker1_pid=""
note "SIGKILL worker w1 at $completed completed leases"

wait_done "$job" 600
reassigned=$(metric regserver_leases_reassigned_total)
[[ "${reassigned:-0}" -ge 1 ]] \
    || fail "no lease reassignment after killing a worker (got '$reassigned')"
curl -sf "$base/jobs/$job/result" >"$workdir/distributed.json"
cmp -s "$workdir/reference.json" "$workdir/distributed.json" \
    || fail "distributed result differs from the single-node run"
note "result byte-identical after $reassigned lease reassignment(s)"

kill -TERM "$worker2_pid" && wait "$worker2_pid" \
    || fail "surviving worker exited non-zero after SIGTERM"
worker2_pid=""
stop_server
note "OK"
