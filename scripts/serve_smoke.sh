#!/usr/bin/env bash
# End-to-end smoke test of the mining service over plain HTTP: boot regserver
# on a random port, upload a synthetic matrix, mine it, and assert that an
# identical resubmission is served from the result cache.
set -euo pipefail

script_dir=$(cd "$(dirname "$0")" && pwd)
cd "$script_dir/.."
SMOKE_NAME=serve-smoke
# shellcheck source=scripts/lib.sh
. "$script_dir/lib.sh"
smoke_init

build_tools regserver datagen
"$workdir/datagen" -kind synthetic -genes 80 -conds 12 -clusters 3 -seed 7 \
    -out "$workdir/matrix.tsv"

start_server "$workdir/server.log" -jobs 1 -trace
note "server at $base"

curl -sf "$base/healthz" >/dev/null || fail "healthz"

dataset=$(upload "$workdir/matrix.tsv" smoke)
[[ -n "$dataset" ]] || fail "upload returned no dataset ID"
note "dataset $dataset"

submit_full() { # prints the whole submission reply, not just the ID
    curl -sf -X POST -H 'Content-Type: application/json' -d \
        '{"dataset":"'"$dataset"'","params":{"MinG":4,"MinC":4,"Gamma":0.1,"Epsilon":0.05}}' \
        "$base/jobs"
}

job=$(submit_full)
job_id=$(echo "$job" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[[ -n "$job_id" ]] || fail "submission returned no job ID: $job"
echo "$job" | grep -q '"cached": *false' || fail "first submission claims a cache hit: $job"

status=""
for _ in $(seq 1 300); do
    view=$(curl -sf "$base/jobs/$job_id")
    status=$(echo "$view" | sed -n 's/.*"status": *"\([a-z]*\)".*/\1/p')
    case "$status" in
        done) break ;;
        failed|cancelled) fail "job ended $status: $view" ;;
    esac
    sleep 0.1
done
[[ "$status" == done ]] || fail "job stuck in '$status'"
clusters=$(echo "$view" | sed -n 's/.*"clusters": *\([0-9]*\).*/\1/p' | head -1)
note "job $job_id done with $clusters clusters"

# The NDJSON stream of a finished job replays every cluster plus a summary.
lines=$(curl -sf "$base/jobs/$job_id/stream" | wc -l)
[[ "$lines" -eq $((clusters + 1)) ]] || fail "stream has $lines lines for $clusters clusters"

# With -trace the finished job serves a non-empty span tree: a "job" root
# with the mining phases underneath.
trace=$(curl -sf "$base/jobs/$job_id/trace")
echo "$trace" | grep -q '"name": *"job"' || fail "trace has no job span: $trace"
for span in queue attempt rwave.build subtree; do
    echo "$trace" | grep -q '"name": *"'"$span"'"' || fail "trace missing $span span"
done
note "trace has job/queue/attempt/rwave.build/subtree spans"

resubmit=$(submit_full)
echo "$resubmit" | grep -q '"cached": *true' || fail "resubmission missed the cache: $resubmit"

metrics=$(curl -sf "$base/metrics")
echo "$metrics" | grep -q '^regcluster_cache_hits_total 1$' \
    || fail "cache_hits metric: $(echo "$metrics" | grep cache_hits)"

# Batch sweep: four ε points under one γ (distinct from the job above) must
# cost exactly one additional RWave build — the sweep points share the model
# set through the cache. With -jobs 1 the points run serially, so the
# hit/miss split is deterministic: 2 misses total (first job's γ=0.1 plus the
# sweep's γ=0.15 group) and 3 hits (the other three sweep points).
sweep=$(curl -sf -X POST -H 'Content-Type: application/json' -d \
    '{"dataset":"'"$dataset"'","params":{"MinG":4,"MinC":4,"Gamma":0.15},"epsilons":[0.02,0.05,0.08,0.11]}' \
    "$base/sweep")
sweep_id=$(echo "$sweep" | sed -n 's/.*"id": *"\(sweep-[0-9]*\)".*/\1/p' | head -1)
[[ -n "$sweep_id" ]] || fail "sweep submission returned no ID: $sweep"
echo "$sweep" | grep -q '"schema": *"regcluster.sweep/v1"' || fail "sweep schema: $sweep"
echo "$sweep" | grep -q '"model_groups": *1' || fail "sweep model_groups: $sweep"

sweep_done=""
for _ in $(seq 1 300); do
    sview=$(curl -sf "$base/sweeps/$sweep_id")
    if echo "$sview" | grep -q '"done": *true'; then sweep_done=yes; break; fi
    sleep 0.1
done
[[ -n "$sweep_done" ]] || fail "sweep never finished: $sview"
points=$(echo "$sview" | grep -c '"job": *"job-') || true
[[ "$points" -eq 4 ]] || fail "sweep has $points points, want 4"
echo "$sview" | grep -q '"failed"' && fail "sweep has failed points: $sview"
note "sweep $sweep_id done with $points points"

metrics=$(curl -sf "$base/metrics")
echo "$metrics" | grep -q '^regserver_model_cache_misses_total 2$' \
    || fail "model cache misses: $(echo "$metrics" | grep model_cache)"
echo "$metrics" | grep -q '^regserver_model_cache_hits_total 3$' \
    || fail "model cache hits: $(echo "$metrics" | grep model_cache)"

stop_server
grep -q '^regserver: bye$' "$workdir/server.log" || fail "no clean shutdown line"
note "OK"
