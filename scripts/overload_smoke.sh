#!/usr/bin/env bash
# Overload smoke test of multi-tenant admission control: burst 50 submissions
# from two API-key tenants at a 2-slot durable server. The quota-bounded heavy
# tenant is rejected fast — 429 with a Retry-After header — while the light
# tenant's jobs all complete; no request ever sees a 5xx; and a graceful
# restart replays byte-identical per-tenant usage ledgers from the journal.
set -euo pipefail

script_dir=$(cd "$(dirname "$0")" && pwd)
cd "$script_dir/.."
SMOKE_NAME=overload-smoke
# shellcheck source=scripts/lib.sh
. "$script_dir/lib.sh"
smoke_init

build_tools regserver datagen
"$workdir/datagen" -kind synthetic -genes 260 -conds 13 -clusters 10 -seed 7 \
    -out "$workdir/matrix.tsv"

# heavy: normal priority, at most 4 jobs in flight — the burst overruns it.
# light: high priority, no bounds — its work must ride through the overload.
cat >"$workdir/tenants.json" <<'JSON'
[
  {"id": "heavy", "api_key": "heavy-key", "max_active": 4},
  {"id": "light", "api_key": "light-key", "priority": "high", "weight": 2}
]
JSON

boot() { # boot <log>: the tenant-aware durable server under test
    start_server "$1" -jobs 2 -workers 1 -data-dir "$workdir/datadir" \
        -tenants "$workdir/tenants.json" -shed-watermark 16
}

# submit_as <api-key> <params-json>: sets reply_status, reply_retry, reply_id.
submit_as() {
    local hdrs="$workdir/hdrs"
    local body
    body=$(curl -s -D "$hdrs" -X POST -H 'Content-Type: application/json' \
        -H "X-API-Key: $1" \
        -d '{"dataset":"'"$dataset"'","params":'"$2"'}' "$base/jobs")
    reply_status=$(sed -n '1s/^[^ ]* \([0-9]\{3\}\).*/\1/p' "$hdrs")
    reply_retry=$(sed -n 's/^[Rr]etry-[Aa]fter: *\([0-9]*\).*/\1/p' "$hdrs")
    reply_id=$(printf '%s' "$body" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
}

wait_terminal() { # wait_terminal <job-id> <want-status-regex>
    local status=""
    for _ in $(seq 1 600); do
        status=$(job_field "$1" status)
        if [[ -n "$status" ]] && printf '%s' "$status" | grep -qE "^($2)$"; then
            return 0
        fi
        case "$status" in done|failed|cancelled|interrupted)
            fail "job $1 ended $status, want $2" ;;
        esac
        sleep 0.2
    done
    fail "job $1 stuck in '$status', want $2"
}

boot "$workdir/boot.log"
dataset=$(upload "$workdir/matrix.tsv" overload)
[[ -n "$dataset" ]] || fail "upload returned no dataset ID"

# --- Phase 1: the burst — 40 heavy + 10 light submissions -------------------
heavy_params() { # distinct (never-reached) MaxClusters per point: unique
    # cache keys without capping the multi-second mining run short.
    echo '{"MinG":3,"MinC":3,"Gamma":0.05,"Epsilon":1.5,"MaxClusters":'"$((100000 + $1))"'}'
}
light_params() {
    echo '{"MinG":3,"MinC":5,"Gamma":0.15,"Epsilon":0.1,"MaxClusters":'"$((200 + $1))"'}'
}

heavy_jobs=()
heavy_rejects=0
first_retry=""
for i in $(seq 1 40); do
    submit_as heavy-key "$(heavy_params "$i")"
    case "$reply_status" in
        202) heavy_jobs+=("$reply_id") ;;
        429) heavy_rejects=$((heavy_rejects + 1))
             [[ -n "$first_retry" ]] || first_retry="$reply_retry" ;;
        5*)  fail "heavy submission $i answered $reply_status" ;;
        *)   fail "heavy submission $i answered unexpected $reply_status" ;;
    esac
done
light_jobs=()
for i in $(seq 1 10); do
    submit_as light-key "$(light_params "$i")"
    case "$reply_status" in
        202) light_jobs+=("$reply_id") ;;
        *)   fail "light submission $i answered $reply_status (burst must not touch the light tenant)" ;;
    esac
done

[[ ${#heavy_jobs[@]} -eq 4 ]] || fail "heavy tenant got ${#heavy_jobs[@]} slots, want its max_active of 4"
[[ "$heavy_rejects" -eq 36 ]] || fail "heavy tenant saw $heavy_rejects rejections, want 36"
[[ -n "$first_retry" && "$first_retry" -ge 1 ]] \
    || fail "429 carried Retry-After '$first_retry', want a positive integer"
note "burst done (heavy: 4 accepted + 36x 429 with Retry-After ${first_retry}s)"

# --- Phase 2: the light tenant's work completes; heavy unwinds --------------
for id in "${heavy_jobs[@]}"; do
    curl -sf -X POST "$base/jobs/$id/cancel" >/dev/null
done
for id in "${heavy_jobs[@]}"; do
    # A heavy job may have finished before its cancel landed; both are clean.
    wait_terminal "$id" 'cancelled|done'
done
for id in "${light_jobs[@]}"; do
    wait_terminal "$id" done
done
note "light tenant completed all 10 jobs through the overload"

curl -sf "$base/healthz" | grep -q '"queue_depth"' \
    || fail "healthz lost its saturation fields"
curl -sf "$base/metrics" | grep -q '^regserver_tenant_jobs_rejected_total{tenant="heavy"} 36$' \
    || fail "labeled rejection counter missing or wrong"

curl -sf "$base/tenants/heavy/usage" >"$workdir/heavy.before"
curl -sf "$base/tenants/light/usage" >"$workdir/light.before"
grep -q '"rejected": *36' "$workdir/heavy.before" || fail "heavy ledger: $(cat "$workdir/heavy.before")"
grep -q '"completed": *10' "$workdir/light.before" || fail "light ledger: $(cat "$workdir/light.before")"

# --- Phase 3: restart and compare the replayed ledgers ----------------------
stop_server
boot "$workdir/restart.log"
curl -sf "$base/tenants/heavy/usage" >"$workdir/heavy.after"
curl -sf "$base/tenants/light/usage" >"$workdir/light.after"
cmp -s "$workdir/heavy.before" "$workdir/heavy.after" \
    || fail "heavy usage drifted across restart: $(cat "$workdir/heavy.after")"
cmp -s "$workdir/light.before" "$workdir/light.after" \
    || fail "light usage drifted across restart: $(cat "$workdir/light.after")"
stop_server

note "PASS (0 5xx; 36 honest 429s; usage ledgers replay byte-identical)"
