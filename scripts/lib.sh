# Shared helpers for the smoke-test scripts. Source after setting SMOKE_NAME
# (the prefix of every log/fail line):
#
#     SMOKE_NAME=serve-smoke
#     . "$(dirname "$0")/lib.sh"
#     smoke_init
#
# smoke_init creates $workdir and installs an EXIT trap that kills every
# process registered in $server_pid / $extra_pids and removes $workdir.
# start_server boots regserver on a random port, scrapes the announced
# address into $base, and fails fast if the process dies while starting.
#
# shellcheck shell=bash

GO=${GO:-go}

workdir=""
server_pid=""
extra_pids=()
base=""

fail() { echo "${SMOKE_NAME:-smoke}: FAIL: $*" >&2; exit 1; }

note() { echo "${SMOKE_NAME:-smoke}: $*"; }

smoke_cleanup() {
    local pid
    for pid in "${extra_pids[@]}" "$server_pid"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    [[ -n "$workdir" ]] && rm -rf "$workdir"
}

smoke_init() {
    workdir=$(mktemp -d)
    trap smoke_cleanup EXIT
}

build_tools() { # build_tools <cmd>...: builds each ./cmd/<name> into $workdir
    local c
    for c in "$@"; do
        $GO build -o "$workdir/$c" "./cmd/$c"
    done
}

# wait_listening <pid> <log>: sets $base from the "listening on" line.
wait_listening() {
    local pid=$1 log=$2
    base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's/^regserver: listening on \(http:\/\/[^ ]*\).*$/\1/p' "$log")
        [[ -n "$base" ]] && break
        kill -0 "$pid" 2>/dev/null || fail "server died: $(cat "$log")"
        sleep 0.1
    done
    [[ -n "$base" ]] || fail "server never announced its address"
}

# start_server <log> [flags...]: boots regserver, sets $server_pid and $base.
start_server() {
    local log=$1
    shift
    "$workdir/regserver" -addr 127.0.0.1:0 "$@" >"$log" 2>&1 &
    server_pid=$!
    wait_listening "$server_pid" "$log"
}

stop_server() { # graceful shutdown; the server must exit zero
    kill -TERM "$server_pid"
    wait "$server_pid" || fail "server exited non-zero after SIGTERM"
    server_pid=""
}

kill_server() { # simulated crash
    kill -9 "$server_pid"
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
}

upload() { # upload <tsv-file> <name>: prints the dataset ID
    curl -sf -X POST --data-binary @"$1" "$base/datasets?name=$2" \
        | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'
}

submit() { # submit <dataset-id> <params-json>: prints the job ID
    curl -sf -X POST -H 'Content-Type: application/json' \
        -d '{"dataset":"'"$1"'","params":'"$2"'}' "$base/jobs" \
        | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'
}

job_field() { # job_field <job-id> <field>: numeric or quoted-string field
    curl -sf "$base/jobs/$1" \
        | sed -n 's/.*"'"$2"'": *"\{0,1\}\([a-zA-Z0-9_.-]*\)"\{0,1\}[,}].*/\1/p' | head -1
}

metric() { # metric <name>: current value, empty when absent
    curl -sf "$base/metrics" | sed -n "s/^$1 \([0-9]*\)$/\1/p" | head -1
}

wait_done() { # wait_done <job-id> <tries> (5 tries/second)
    local status=""
    for _ in $(seq 1 "$2"); do
        status=$(job_field "$1" status)
        case "$status" in
            done) return 0 ;;
            failed|cancelled|interrupted) fail "job $1 ended $status" ;;
        esac
        sleep 0.2
    done
    fail "job $1 stuck in '$status'"
}
