// Package regcluster is a Go implementation of the reg-cluster model and
// mining algorithm from "Mining Shifting-and-Scaling Co-Regulation Patterns
// on Gene Expression Profiles" (Xu, Lu, Tung, Wang — ICDE 2006).
//
// A reg-cluster is a bicluster X × Y of genes and experimental conditions in
// which every gene's expression either strictly rises (p-members) or strictly
// falls (n-members) along the condition chain Y, every step is a significant
// regulation with respect to the per-gene threshold γ_i, and all genes agree
// (within the coherence threshold ε) on the relative step sizes. This
// captures arbitrary shifting-and-scaling patterns d_i = s1·d_j + s2 with
// positive or negative scaling — strictly more general than the pure shifting
// (pCluster/δ-cluster) and pure scaling (triCluster) pattern models.
//
// Basic use:
//
//	m, err := regcluster.ReadTSVFile("expression.tsv")
//	...
//	res, err := regcluster.Mine(m, regcluster.Params{
//		MinG: 20, MinC: 6, Gamma: 0.05, Epsilon: 1.0,
//	})
//	for _, b := range res.Clusters {
//		fmt.Println(b)
//	}
//
// The subpackages under internal/ implement the machinery (the RWave^γ
// index, the depth-first chain miner, baseline biclustering algorithms, the
// synthetic workload generator and the evaluation toolkit); this package is
// the stable public surface over them.
package regcluster

import (
	"context"
	"io"

	"regcluster/internal/core"
	"regcluster/internal/eval"
	"regcluster/internal/matrix"
	"regcluster/internal/report"
	"regcluster/internal/service"
	"regcluster/internal/significance"
	"regcluster/internal/synthetic"
)

// Matrix is a dense, labelled gene × condition expression matrix.
type Matrix = matrix.Matrix

// NewMatrix returns a rows×cols zero matrix with generated gene/condition
// names.
func NewMatrix(rows, cols int) *Matrix { return matrix.New(rows, cols) }

// MatrixFromRows builds a matrix from a slice of equal-length rows.
func MatrixFromRows(rows [][]float64) *Matrix { return matrix.FromRows(rows) }

// ReadTSV parses a tab-separated expression matrix (optional header line;
// "NA"/empty cells become NaN).
func ReadTSV(r io.Reader) (*Matrix, error) { return matrix.ReadTSV(r) }

// ReadTSVFile reads a matrix from the named TSV file.
func ReadTSVFile(path string) (*Matrix, error) { return matrix.ReadTSVFile(path) }

// Params are the mining parameters: MinG, MinC, the regulation threshold
// Gamma (Equation 4) and the coherence threshold Epsilon (Definition 3.2),
// plus safety caps and ablation switches.
type Params = core.Params

// Bicluster is one mined reg-cluster: the representative regulation chain
// plus its p-members and n-members.
type Bicluster = core.Bicluster

// Result bundles the mined clusters with work statistics.
type Result = core.Result

// Stats counts the work performed by one Mine call.
type Stats = core.Stats

// Mine discovers all reg-clusters of m under p.
func Mine(m *Matrix, p Params) (*Result, error) { return core.Mine(m, p) }

// MineContext is Mine with cooperative cancellation: the search stops
// promptly once ctx expires and returns the context's error.
func MineContext(ctx context.Context, m *Matrix, p Params) (*Result, error) {
	return core.MineContext(ctx, m, p)
}

// Visitor receives mined clusters as the search discovers them; returning
// false stops the search, leaving exactly the prefix of Mine's output.
type Visitor = core.Visitor

// MineFunc streams reg-clusters to the visitor in Mine's enumeration order
// instead of accumulating them, bounding memory and enabling early exit.
func MineFunc(m *Matrix, p Params, visit Visitor) (Stats, error) {
	return core.MineFunc(m, p, visit)
}

// MineParallel mines the same cluster set as Mine with a worker pool over
// the level-1 subtrees; workers <= 0 selects GOMAXPROCS. Results — clusters
// and Stats alike — are identical to Mine's for any worker count, in the
// same order, including runs truncated by the global MaxClusters/MaxNodes
// caps.
func MineParallel(m *Matrix, p Params, workers int) (*Result, error) {
	return core.MineParallel(m, p, workers)
}

// MineParallelContext is MineParallel with cooperative cancellation through
// ctx, observed by every worker.
func MineParallelContext(ctx context.Context, m *Matrix, p Params, workers int) (*Result, error) {
	return core.MineParallelContext(ctx, m, p, workers)
}

// MineParallelFunc streams reg-clusters to the visitor from a worker pool,
// in the same deterministic order as MineFunc; a visitor stop halts all
// workers and leaves exactly the sequential prefix.
func MineParallelFunc(m *Matrix, p Params, workers int, visit Visitor) (Stats, error) {
	return core.MineParallelFunc(m, p, workers, visit)
}

// MineParallelFuncContext is MineParallelFunc with cooperative cancellation
// through ctx, observed by every worker at node granularity.
func MineParallelFuncContext(ctx context.Context, m *Matrix, p Params, workers int, visit Visitor) (Stats, error) {
	return core.MineParallelFuncContext(ctx, m, p, workers, visit)
}

// Observer exposes live, monotone node/cluster counters while a mining call
// runs — progress reporting for long jobs. The counters are approximate
// during truncated runs (they may overshoot the settled Stats); the returned
// Stats remain authoritative.
type Observer = core.Observer

// MineParallelFuncObserved is MineParallelFuncContext with live progress
// counters published to obs.
func MineParallelFuncObserved(ctx context.Context, m *Matrix, p Params, workers int, visit Visitor, obs *Observer) (Stats, error) {
	return core.MineParallelFuncObserved(ctx, m, p, workers, visit, obs)
}

// ValidateWorkers rejects worker counts above max (when max > 0). Zero and
// negative counts are always valid: they select GOMAXPROCS.
func ValidateWorkers(workers, max int) error { return core.ValidateWorkers(workers, max) }

// RWaveModel is one gene's prebuilt RWave^γ index (Section 3). A model set —
// one per gene, from BuildModels — is immutable and safe to share across
// concurrent mining runs.
type RWaveModel = core.RWaveModel

// BuildModels constructs the RWave model set Mine would build internally. The
// index depends only on the matrix and the γ-scheme (Gamma/AbsoluteGamma or
// CustomGammas) — not on Epsilon, MinG, MinC or the caps — so a parameter
// sweep over those knobs can build once and call MineWithModels per point. A
// non-nil Observer with an attached span records the construction; pass nil
// otherwise.
func BuildModels(m *Matrix, p Params, o *Observer) ([]*RWaveModel, error) {
	return core.BuildModels(m, p, o)
}

// ModelKey names the model set BuildModels(m, p) produces, for a matrix
// identified by datasetHash: two (dataset, Params) pairs share a key exactly
// when they share a model set. Use it to index caches of prebuilt models.
func ModelKey(datasetHash string, p Params) string { return core.ModelKey(datasetHash, p) }

// MineWithModels is Mine reusing a prebuilt model set from BuildModels on the
// same matrix with a ModelKey-equivalent Params; output is identical to
// Mine(m, p).
func MineWithModels(m *Matrix, p Params, models []*RWaveModel) (*Result, error) {
	return core.MineWithModels(m, p, models)
}

// MineParallelWithModels is MineParallel reusing a prebuilt model set, with
// the same determinism guarantee for any worker count.
func MineParallelWithModels(m *Matrix, p Params, workers int, models []*RWaveModel) (*Result, error) {
	return core.MineParallelWithModels(m, p, workers, models)
}

// AppendConditions grows base with the delta's columns: the delta must carry
// exactly base's genes (same names, same order) and only new condition names.
// Base indices stay valid in the result; the delta's conditions land after
// them. Neither input is modified.
func AppendConditions(base, delta *Matrix) (*Matrix, error) {
	return matrix.AppendConditions(base, delta)
}

// AppendGenes grows base with the delta's rows, symmetric to
// AppendConditions along the gene axis.
func AppendGenes(base, delta *Matrix) (*Matrix, error) {
	return matrix.AppendGenes(base, delta)
}

// RepairModels updates a parent matrix's model set for a child matrix grown
// by AppendConditions, splicing the appended columns into each gene's sorted
// order instead of rebuilding from scratch. The returned set is byte-identical
// to BuildModels(child, p, o); the int reports how many genes took the
// splice fast path (the rest rebuilt — e.g. on a per-gene threshold that
// drifted with the grown value range).
func RepairModels(child *Matrix, p Params, parentModels []*RWaveModel, o *Observer) ([]*RWaveModel, int, error) {
	return core.RepairModels(child, p, parentModels, o)
}

// IncrementalInfo reports how MineIncremental handled a run: the subtrees
// spliced from the parent result versus re-mined, or the reason it fell back
// to a cold mine.
type IncrementalInfo = core.IncrementalInfo

// MineIncremental re-mines a matrix grown by AppendConditions, reusing the
// parent's result wherever the appended conditions cannot have changed it:
// only subtrees rooted at dirty conditions (those within regulation reach of
// an appended condition, plus the appended ones) are re-mined; the rest
// splice from parentResult. The cluster stream delivered to visit and the
// returned Stats are byte-identical to a cold mine of child for any worker
// count. When reuse is unsound (see IncrementalInfo.Fallback) the call
// transparently runs the cold path instead.
func MineIncremental(ctx context.Context, child, parent *Matrix, p Params, workers int,
	visit Visitor, o *Observer, childModels, parentModels []*RWaveModel, parentResult *Result) (Stats, IncrementalInfo, error) {
	return core.MineIncremental(ctx, child, parent, p, workers, visit, o, childModels, parentModels, parentResult)
}

// ThresholdsRangeFraction, ThresholdsMeanFraction and ThresholdsNearestPair
// compute alternative per-gene regulation thresholds (Section 3.1) for
// Params.CustomGammas.
func ThresholdsRangeFraction(m *Matrix, gamma float64) []float64 {
	return core.ThresholdsRangeFraction(m, gamma)
}

// ThresholdsMeanFraction returns gamma × mean(|row|) per gene.
func ThresholdsMeanFraction(m *Matrix, gamma float64) []float64 {
	return core.ThresholdsMeanFraction(m, gamma)
}

// ThresholdsNearestPair returns the average adjacent gap of each gene's
// sorted profile (the OP-Cluster style threshold).
func ThresholdsNearestPair(m *Matrix) []float64 { return core.ThresholdsNearestPair(m) }

// CheckBicluster verifies a cluster against Definition 3.2 directly from the
// expression values, independent of the mining index.
func CheckBicluster(m *Matrix, p Params, b *Bicluster) error {
	return core.CheckBicluster(m, p, b)
}

// CoherenceH computes the Equation 7 coherence score
// H(gene, c1, c2, ck, ck1).
func CoherenceH(m *Matrix, gene, c1, c2, ck, ck1 int) float64 {
	return core.CoherenceH(m, gene, c1, c2, ck, ck1)
}

// SyntheticConfig parameterizes the Section 5 synthetic data generator.
type SyntheticConfig = synthetic.Config

// Embedded is the ground truth of one planted cluster.
type Embedded = synthetic.Embedded

// GenerateSynthetic builds a synthetic dataset with planted perfect
// shifting-and-scaling clusters and returns the ground truth alongside.
func GenerateSynthetic(cfg SyntheticConfig) (*Matrix, []Embedded, error) {
	return synthetic.Generate(cfg)
}

// DefaultSyntheticConfig returns the paper's default generator setting
// (#g = 3000, #cond = 30, #clus = 30).
func DefaultSyntheticConfig() SyntheticConfig { return synthetic.DefaultConfig() }

// RelevanceRecovery scores mined clusters against planted ground truth using
// gene-set match scores.
func RelevanceRecovery(mined []*Bicluster, truth []Embedded) (relevance, recovery float64) {
	return eval.RelevanceRecovery(mined, truth)
}

// OverlapStats summarizes pairwise cell-overlap fractions of a result set.
type OverlapStats = eval.OverlapStats

// Overlaps computes overlap statistics over all cluster pairs (the
// Section 5.2 statistic).
func Overlaps(clusters []*Bicluster) OverlapStats { return eval.Overlaps(clusters) }

// NonOverlapping greedily selects up to k pairwise non-overlapping clusters,
// largest first.
func NonOverlapping(clusters []*Bicluster, k int) []*Bicluster {
	return eval.NonOverlapping(clusters, k)
}

// MaximalOnly drops clusters fully contained in another cluster.
func MaximalOnly(clusters []*Bicluster) []*Bicluster { return eval.MaximalOnly(clusters) }

// SignificanceOptions configures the permutation significance test.
type SignificanceOptions = significance.Options

// SignificanceResult pairs a cluster with its empirical p-value.
type SignificanceResult = significance.Result

// SignificanceTest estimates an empirical p-value for every mined cluster by
// per-gene permutation testing (an extension beyond the paper's GO-based
// assessment). It reruns the miner opt.Rounds times on shuffled copies of m.
func SignificanceTest(m *Matrix, p Params, clusters []*Bicluster, opt SignificanceOptions) ([]SignificanceResult, error) {
	return significance.Test(m, p, clusters, opt)
}

// ResultSchemaID identifies the stable JSON result schema emitted by Report,
// `regcluster -json` and the service's result endpoints.
const ResultSchemaID = report.SchemaID

// Document is the stable JSON form of a mining result: parameters, stats and
// name-resolved clusters under the ResultSchemaID schema.
type Document = report.Document

// NamedCluster is one cluster with gene/condition names resolved, the chain
// direction, and signed members (p-members "+", n-members "-").
type NamedCluster = report.NamedCluster

// Member is one gene of a NamedCluster with its regulation sign.
type Member = report.Member

// Report converts a mining result into its stable JSON document form.
func Report(m *Matrix, p Params, res *Result) *Document { return report.FromResult(m, p, res) }

// NamedFromBicluster resolves one cluster's indices to names.
func NamedFromBicluster(m *Matrix, b *Bicluster) NamedCluster { return report.Named(m, b) }

// ReadReport parses a document previously written by Report (or the CLI's
// -json mode), rejecting documents with a foreign schema identifier.
func ReadReport(r io.Reader) (*Document, error) { return report.Read(r) }

// ServiceConfig parameterizes the mining HTTP service.
type ServiceConfig = service.Config

// DeltaInfo is the lineage the service records for a dataset produced by an
// append delta (POST /datasets/{id}/append): the parent's content hash, the
// grown axis, and the parent's dimensions.
type DeltaInfo = service.DeltaInfo

// Service is the embeddable mining service: dataset registry, async job
// manager, result cache and metrics behind an http.Handler. Run it
// standalone with `regserver`.
type Service = service.Server

// NewService builds a mining service; mount NewService(cfg).Handler() on any
// mux, and call Shutdown to drain jobs on exit. With ServiceConfig.DataDir
// set, prefer OpenService: New panics where Open reports the boot error.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// OpenService builds a mining service, running crash recovery against
// cfg.DataDir (replay the job journal, re-register datasets, restore the
// result cache, resume interrupted jobs) before returning. Call Close after
// Shutdown to release the journal.
func OpenService(cfg ServiceConfig) (*Service, error) { return service.Open(cfg) }
