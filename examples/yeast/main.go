// Yeast effectiveness demo: reproduce the Section 5.2 study on the 2884×17
// yeast-substitute dataset — mine bi-reg-clusters at MinG=20, MinC=6,
// γ=0.05, ε=1.0, pick three non-overlapping clusters, and score them with
// the GO term finder as in Table 2.
//
//	go run ./examples/yeast [path/to/real/tavazoie.tsv]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"regcluster"
)

func main() {
	var (
		m       *regcluster.Matrix
		modules []regcluster.Module
		err     error
	)
	if len(os.Args) > 1 {
		// A real expression file was supplied.
		m, err = regcluster.LoadExpressionFile(os.Args[1])
	} else {
		m, modules, err = regcluster.GenerateYeastLike(regcluster.DefaultYeastConfig())
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d genes × %d conditions\n", m.Rows(), m.Cols())

	params := regcluster.Params{MinG: 20, MinC: 6, Gamma: 0.05, Epsilon: 1.0}
	start := time.Now()
	res, err := regcluster.Mine(m, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d bi-reg-clusters in %s\n", len(res.Clusters), time.Since(start).Round(time.Millisecond))

	ov := regcluster.Overlaps(res.Clusters)
	fmt.Printf("pairwise cell overlap: %.0f%%–%.0f%% (mean %.0f%%)\n",
		100*ov.Min, 100*ov.Max, 100*ov.Mean)

	selected := regcluster.NonOverlapping(res.Clusters, 3)
	fmt.Printf("\n%d non-overlapping clusters (Figure 8 style):\n", len(selected))
	for i, b := range selected {
		g, c := b.Dims()
		fmt.Printf("  cluster %d: %d genes (%d p / %d n) × %d conditions\n",
			i+1, g, len(b.PMembers), len(b.NMembers), c)
	}

	if modules == nil {
		fmt.Println("\n(no ground-truth modules — GO scoring skipped for a real file)")
		return
	}

	// Build the GO substrate from the planted modules and score the
	// selected clusters per namespace, as in Table 2.
	sets := make([][]int, len(modules))
	for i := range modules {
		sets[i] = modules[i].Genes()
	}
	corpus := regcluster.SynthesizeGO(m.Rows(), sets, 99)
	fmt.Println("\nTable 2 — top GO terms:")
	for i, b := range selected {
		fmt.Printf("  cluster %d:\n", i+1)
		for _, ns := range []regcluster.GONamespace{regcluster.GOProcess, regcluster.GOFunction, regcluster.GOComponent} {
			es := corpus.TermFinder(b.Genes(), ns)
			if len(es) == 0 {
				fmt.Printf("    %-20s —\n", ns)
				continue
			}
			fmt.Printf("    %-20s %s (p=%.3g, %d/%d genes)\n",
				ns, es[0].Term.Name, es[0].PValue, es[0].Overlap, es[0].Query)
		}
	}
}
