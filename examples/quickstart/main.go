// Quickstart: mine the paper's running example (Table 1) and print the
// unique reg-cluster it contains.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"regcluster"
)

func main() {
	// Table 1 of the paper: three genes under ten conditions. g1 and g3 are
	// positively co-regulated and g2 negatively co-regulated with them on
	// conditions c5, c1, c3, c9, c7 — a shifting-and-scaling pattern:
	// d1 = 2.5*d3 - 5 and d2 = -2.5*d3 + 35.
	m := regcluster.MatrixFromRows([][]float64{
		{10, -14.5, 15, 10.5, 0, 14.5, -15, 0, -5, -5}, // g1
		{20, 15, 15, 43.5, 30, 44, 45, 43, 35, 20},     // g2
		{6, -3.8, 8, 6.2, 2, 7.8, -4, 2, 0, 0},         // g3
	})
	for i := 0; i < 3; i++ {
		m.SetRowName(i, fmt.Sprintf("g%d", i+1))
	}
	for j := 0; j < 10; j++ {
		m.SetColName(j, fmt.Sprintf("c%d", j+1))
	}

	// The parameters of the paper's Section 4 walk-through.
	params := regcluster.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1}
	res, err := regcluster.Mine(m, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d reg-cluster(s)\n\n", len(res.Clusters))
	for _, b := range res.Clusters {
		fmt.Println("representative regulation chain:")
		for i, c := range b.Chain {
			if i > 0 {
				fmt.Print(" ↶ ")
			}
			fmt.Print(m.ColName(c))
		}
		fmt.Println()
		fmt.Print("p-members (rise along the chain):")
		for _, g := range b.PMembers {
			fmt.Printf(" %s", m.RowName(g))
		}
		fmt.Println()
		fmt.Print("n-members (fall along the chain):")
		for _, g := range b.NMembers {
			fmt.Printf(" %s", m.RowName(g))
		}
		fmt.Println()

		// Independent validation against Definition 3.2.
		if err := regcluster.CheckBicluster(m, params, b); err != nil {
			log.Fatalf("validation failed: %v", err)
		}
		fmt.Println("\ncluster validates against Definition 3.2 ✓")

		// The coherence scores of Equation 7 are identical for all members.
		fmt.Println("\ncoherence scores H(i, c7,c9, ck, ck+1) per gene:")
		for g := 0; g < m.Rows(); g++ {
			fmt.Printf("  %s:", m.RowName(g))
			for k := 1; k+1 < len(b.Chain); k++ {
				h := regcluster.CoherenceH(m, g, b.Chain[0], b.Chain[1], b.Chain[k], b.Chain[k+1])
				fmt.Printf(" %.2f", h)
			}
			fmt.Println()
		}
	}
	fmt.Printf("\nsearch visited %d nodes, examined %d candidates\n",
		res.Stats.Nodes, res.Stats.CandidatesExamined)
}
