// Negative co-regulation demo: genes related by d_i = s1·d_j + s2 with
// NEGATIVE s1 are grouped into the same reg-cluster as their positively
// correlated partners — the capability the paper highlights as missing from
// all prior pattern-based biclustering models.
//
//	go run ./examples/negcorrelation
package main

import (
	"fmt"
	"log"

	"regcluster"
)

func main() {
	// A base activation profile over eight conditions.
	base := []float64{1, 9, 3, 11, 5, 13, 7, 15}

	// Five genes derived from it by shifting-and-scaling; two with negative
	// scaling factors (repressed whenever the others are induced).
	relations := []struct {
		name     string
		s1, s2   float64
		expected string
	}{
		{"activatorA", 1.0, 0, "p"},
		{"activatorB", 2.5, -3, "p"},
		{"activatorC", 0.5, 10, "p"},
		{"repressorX", -1.0, 20, "n"},
		{"repressorY", -3.0, 50, "n"},
	}
	m := regcluster.NewMatrix(len(relations), len(base))
	for i, r := range relations {
		m.SetRowName(i, r.name)
		for j, v := range base {
			m.Set(i, j, r.s1*v+r.s2)
		}
	}

	params := regcluster.Params{MinG: 5, MinC: 8, Gamma: 0.1, Epsilon: 1e-9}
	res, err := regcluster.Mine(m, params)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		log.Fatal("no cluster found — unexpected")
	}
	b := res.Clusters[0]

	fmt.Println("one reg-cluster spanning all five genes and all eight conditions:")
	fmt.Print("  chain:")
	for _, c := range b.Chain {
		fmt.Printf(" %s", m.ColName(c))
	}
	fmt.Println()
	fmt.Print("  p-members:")
	for _, g := range b.PMembers {
		fmt.Printf(" %s", m.RowName(g))
	}
	fmt.Println()
	fmt.Print("  n-members:")
	for _, g := range b.NMembers {
		fmt.Printf(" %s", m.RowName(g))
	}
	fmt.Println()

	fmt.Println("\nprofiles along the chain (note the crossovers between inducers and repressors):")
	for g := 0; g < m.Rows(); g++ {
		fmt.Printf("  %-10s", m.RowName(g))
		for _, c := range b.Chain {
			fmt.Printf(" %7.1f", m.At(g, c))
		}
		fmt.Println()
	}

	// Every member shares the same Equation 7 coherence scores even though
	// the scaling factors differ in sign and magnitude.
	fmt.Println("\nEquation 7 coherence scores per member (identical by construction):")
	for g := 0; g < m.Rows(); g++ {
		fmt.Printf("  %-10s", m.RowName(g))
		for k := 1; k+1 < len(b.Chain); k++ {
			fmt.Printf(" %.3f", regcluster.CoherenceH(m, g, b.Chain[0], b.Chain[1], b.Chain[k], b.Chain[k+1]))
		}
		fmt.Println()
	}
}
