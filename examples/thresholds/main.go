// Thresholds and significance demo: mine the same dataset under the three
// regulation-threshold schemes of Section 3.1 and score the resulting
// clusters with the permutation significance test.
//
//	go run ./examples/thresholds
package main

import (
	"fmt"
	"log"

	"regcluster"
)

func main() {
	// A small dataset: one strong co-regulation module (8 genes over
	// conditions 0..5, with two negatively scaled members) plus weak noise
	// genes whose swings are small relative to their own spike range.
	cfg := regcluster.SyntheticConfig{
		Genes: 150, Conds: 12, Clusters: 1, AvgClusterGenes: 8, Seed: 21,
	}
	m, truth, err := regcluster.GenerateSynthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %dx%d, planted cluster of %d genes × %d conditions\n\n",
		m.Rows(), m.Cols(), len(truth[0].Genes()), len(truth[0].Chain))

	base := regcluster.Params{MinG: 6, MinC: 5, Epsilon: 0.02}

	schemes := []struct {
		name   string
		gammas []float64
	}{
		{"Equation 4: γ=0.1 × gene range", regcluster.ThresholdsRangeFraction(m, 0.1)},
		{"mean-fraction: γ=0.15 × mean|expr|", regcluster.ThresholdsMeanFraction(m, 0.15)},
		{"nearest-pair average (OP-Cluster style)", regcluster.ThresholdsNearestPair(m)},
	}
	for _, s := range schemes {
		p := base
		p.CustomGammas = s.gammas
		res, err := regcluster.Mine(m, p)
		if err != nil {
			log.Fatal(err)
		}
		maximal := regcluster.MaximalOnly(res.Clusters)
		fmt.Printf("%-42s %3d clusters (%d maximal)\n", s.name, len(res.Clusters), len(maximal))

		if len(maximal) == 0 {
			continue
		}
		scored, err := regcluster.SignificanceTest(m, p, maximal, regcluster.SignificanceOptions{
			Rounds: 19, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range scored {
			g, c := r.Cluster.Dims()
			verdict := "not significant"
			if r.PValue <= 0.05 {
				verdict = "SIGNIFICANT"
			}
			fmt.Printf("    %2d genes × %d conds  p=%.3f  %s\n", g, c, r.PValue, verdict)
		}
	}
	fmt.Println("\nAll three schemes find the planted module; the permutation test")
	fmt.Println("separates it from chance clusters without any GO annotations.")
}
