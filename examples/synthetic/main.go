// Synthetic recovery demo: generate a Section 5 style dataset with planted
// perfect shifting-and-scaling clusters, mine it, and score the result
// against the ground truth with relevance/recovery match scores.
//
//	go run ./examples/synthetic [-genes N] [-conds N] [-clusters N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"regcluster"
)

func main() {
	genes := flag.Int("genes", 1000, "number of genes")
	conds := flag.Int("conds", 20, "number of conditions")
	clusters := flag.Int("clusters", 10, "number of planted clusters")
	seed := flag.Int64("seed", 7, "generator seed")
	flag.Parse()

	cfg := regcluster.SyntheticConfig{
		Genes: *genes, Conds: *conds, Clusters: *clusters, Seed: *seed,
	}
	m, truth, err := regcluster.GenerateSynthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %dx%d matrix with %d planted clusters\n", m.Rows(), m.Cols(), len(truth))

	params := regcluster.Params{
		MinG:    *genes / 100,
		MinC:    5,
		Gamma:   0.1,
		Epsilon: 0.01,
	}
	if params.MinG < 4 {
		params.MinG = 4
	}
	start := time.Now()
	res, err := regcluster.Mine(m, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d reg-clusters in %s (%d search nodes)\n",
		len(res.Clusters), time.Since(start).Round(time.Millisecond), res.Stats.Nodes)

	relevance, recovery := regcluster.RelevanceRecovery(res.Clusters, truth)
	fmt.Printf("relevance (mined→truth): %.3f\n", relevance)
	fmt.Printf("recovery  (truth→mined): %.3f\n", recovery)

	maximal := regcluster.MaximalOnly(res.Clusters)
	fmt.Printf("maximal clusters after subsumption filter: %d\n", len(maximal))

	fmt.Println("\nplanted vs largest recovered cluster sizes:")
	for i, e := range truth {
		if i == 5 {
			fmt.Printf("  ... %d more\n", len(truth)-5)
			break
		}
		fmt.Printf("  planted %d: %d genes (%d p / %d n) × %d conds\n",
			i, len(e.PMembers)+len(e.NMembers), len(e.PMembers), len(e.NMembers), len(e.Chain))
	}
}
