// 3-D triCluster demo: mine coherent gene × sample × time blocks from a
// tensor with planted multiplicative triclusters — the data model of the
// triCluster baseline the reg-cluster paper compares against.
//
//	go run ./examples/tricluster3d
package main

import (
	"fmt"
	"log"

	"regcluster"
)

func main() {
	cfg := regcluster.TensorConfig{
		Genes: 60, Samples: 8, Times: 6,
		Clusters: 2, ClusterGenes: 8, ClusterSamples: 4, ClusterTimes: 3,
		Seed: 5,
	}
	ten, truth, err := regcluster.GenerateTensor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tensor: %d genes × %d samples × %d times, %d planted triclusters\n",
		ten.Genes(), ten.Samples(), ten.Times(), len(truth))

	got, err := regcluster.MineTriclusters(ten, regcluster.TriclusterParams{
		Epsilon: 0.001, MinG: 8, MinS: 4, MinT: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d triclusters\n\n", len(got))
	for i, tc := range got {
		if i == 4 {
			fmt.Printf("... %d more\n", len(got)-4)
			break
		}
		fmt.Printf("tricluster %d: %d genes × %d samples × %d times\n",
			i+1, len(tc.Genes), len(tc.Samples), len(tc.Times))
		fmt.Printf("  genes %v\n  samples %v\n  times %v\n", tc.Genes, tc.Samples, tc.Times)
		if !regcluster.IsTricluster(ten, tc.Genes, tc.Samples, tc.Times, 0.001) {
			log.Fatal("mined block fails verification — bug")
		}
	}

	// Check the planted blocks came back.
	for k, e := range truth {
		found := false
		for _, tc := range got {
			if equal(tc.Genes, e.Genes) && equal(tc.Samples, e.Samples) && equal(tc.Times, e.Times) {
				found = true
			}
		}
		fmt.Printf("planted block %d recovered: %v\n", k, found)
	}
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
